package emu

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sonuma/internal/core"
	"sonuma/internal/fabric"
	"sonuma/internal/mmu"
	"sonuma/internal/proto"
	"sonuma/internal/qpring"
)

// Config holds the RMC emulation parameters. The zero value selects the
// defaults below.
type Config struct {
	// ITTEntries bounds concurrently in-flight WQ requests per node
	// (Inflight Transaction Table size). Max 4096 (tid packs a 12-bit
	// index plus a 4-bit generation).
	ITTEntries int
	// TLBEntries and TLBWays size the RMC's TLB (Table 1: 32 entries).
	TLBEntries int
	TLBWays    int
	// PageSize for context segments (Table 1: 8 KB).
	PageSize int
	// PollBudget bounds WQ entries consumed per QP per scheduling pass,
	// so one busy QP cannot starve others.
	PollBudget int
	// SpinCount is how many empty passes the RGP/RCP pipeline makes
	// before parking on its doorbell.
	SpinCount int
	// BatchSize is the number of line transactions the RGP packs into
	// one fabric batch per destination (default proto.MaxBatch, clamped
	// to [1, proto.MaxBatch]). 1 selects the per-packet data path, kept
	// for ablation benchmarks.
	BatchSize int
	// OpTimeout bounds how long a WQ request may stay in flight before
	// the RCP completes it with StatusNodeFailure (default 2s). The
	// fabric signals loss with failure events when it can, and those
	// flush matching ITT state immediately — but a reply can be lost
	// against a peer whose link looks healthy from THIS side (most
	// plainly across a peer process restart), and a sync caller would
	// otherwise wait forever. Generous by three orders of magnitude over
	// any real completion, so it never fires on a slow op, only on a
	// lost one.
	OpTimeout time.Duration
}

const maxITT = 4096

func (c Config) withDefaults() Config {
	if c.ITTEntries <= 0 {
		c.ITTEntries = 1024
	}
	if c.ITTEntries > maxITT {
		c.ITTEntries = maxITT
	}
	if c.TLBEntries <= 0 {
		c.TLBEntries = 32
	}
	if c.TLBWays <= 0 {
		c.TLBWays = 4
	}
	if c.PageSize <= 0 {
		c.PageSize = mmu.DefaultPageSize
	}
	if c.PollBudget <= 0 {
		c.PollBudget = 32
	}
	if c.SpinCount <= 0 {
		c.SpinCount = 128
	}
	if c.BatchSize <= 0 || c.BatchSize > proto.MaxBatch {
		c.BatchSize = proto.MaxBatch
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 2 * time.Second
	}
	return c
}

// Stats are per-RMC counters exported for the experiment harness.
type Stats struct {
	WQConsumed   atomic.Uint64 // WQ entries accepted by the RGP
	LinesSent    atomic.Uint64 // request packets injected
	BatchesSent  atomic.Uint64 // request batches flushed into the fabric
	RepliesRecv  atomic.Uint64 // reply packets processed by the RCP
	RequestsRecv atomic.Uint64 // request packets processed by the RRPP
	Completions  atomic.Uint64 // CQ entries posted
	Errors       atomic.Uint64 // non-OK completions
	TLBMisses    atomic.Uint64 // RRPP-side translation misses
}

// NotifyFunc handles a remote-interrupt notification raised by an
// OpWriteNotify request (§8). It runs on the RRPP pipeline goroutine and
// must not block; typical handlers forward into a channel.
type NotifyFunc func(src core.NodeID, offset uint64, n int)

// ContextState is the per-node view of one global address space: the CT
// entry (§4.2) holding the local context segment, its address space /
// page-table root, and the registered local buffers.
type ContextState struct {
	ID      core.CtxID
	Seg     *Segment
	AS      *mmu.AddressSpace
	node    core.NodeID
	notify  atomic.Pointer[NotifyFunc]
	mu      sync.RWMutex
	buffers []*Segment
}

// SetNotifyHandler installs (or, with nil, removes) the context's remote-
// interrupt handler.
func (cs *ContextState) SetNotifyHandler(fn NotifyFunc) {
	if fn == nil {
		cs.notify.Store(nil)
		return
	}
	cs.notify.Store(&fn)
}

// NodeID reports the owning node.
func (cs *ContextState) NodeID() core.NodeID { return cs.node }

// RegisterBuffer pins a fresh local buffer of size bytes for use as a
// source/destination of remote operations and returns its id.
func (cs *ContextState) RegisterBuffer(size int) (uint32, *Segment, error) {
	if size <= 0 {
		return 0, nil, fmt.Errorf("emu: invalid buffer size %d", size)
	}
	b := NewSegment(size)
	cs.mu.Lock()
	id := uint32(len(cs.buffers))
	cs.buffers = append(cs.buffers, b)
	cs.mu.Unlock()
	return id, b, nil
}

// Buffer returns the registered buffer with the given id.
func (cs *ContextState) Buffer(id uint32) *Segment {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	if int(id) >= len(cs.buffers) {
		return nil
	}
	return cs.buffers[id]
}

// QPState is one registered queue pair: the application posts WQ entries
// and polls CQ entries; the RMC does the reverse. A QP belongs to one
// context and must be driven by a single application goroutine.
type QPState struct {
	Ctx *ContextState
	WQ  *qpring.WQ
	CQ  *qpring.CQ
	// CQDoorbell is kicked (non-blocking) whenever a completion is
	// posted, so waiters can park instead of spinning indefinitely.
	CQDoorbell chan struct{}
	rmc        *RMC
}

// Doorbell wakes the RGP after a WQ post (the hardware analogue is the RMC
// noticing the cached WQ tail change; the channel makes parking efficient).
// Applications posting a burst of WQ entries ring it once for the burst
// (doorbell coalescing).
func (qp *QPState) Doorbell() {
	select {
	case qp.rmc.doorbell <- struct{}{}:
	default:
	}
}

// ittEntry tracks one in-flight WQ request (§4.2: "the ITT ... keeps track
// of the progress of each WQ request", indexed by tid).
type ittEntry struct {
	active    bool
	gen       uint16
	qp        *QPState
	wqIdx     uint32
	op        core.Op
	node      core.NodeID
	buf       *Segment
	bufOff    uint64
	remaining uint32
	status    core.Status
	linkEpoch uint64    // fabric link-failure epoch at issue time
	issuedAt  time.Time // RGP accept time; bounds the in-flight wait (OpTimeout)
}

// ctrlEvent is a fabric health notification delivered to the RGP/RCP
// pipeline: a failed or restored node, or a failed or restored link
// (isLink set, epoch valid).
type ctrlEvent struct {
	node    core.NodeID
	linkTo  core.NodeID
	isLink  bool
	restore bool
	epoch   uint64
}

// RMC is the emulated remote memory controller for one node: the Context
// Table, the ITT, and the three pipelines of Fig. 3, with RGP+RCP sharing
// one goroutine and RRPP running on another (exactly the thread split of
// the paper's RMCemu, §7.1).
//
// The data path is batched and allocation-free in steady state: the RGP
// drains WQs round-robin into per-destination batch builders and flushes
// whole batches into the fabric's shard queues; the RCP and RRPP consume
// batches and recycle every packet back to the proto pool on completion.
type RMC struct {
	id  core.NodeID
	ic  fabric.Transport
	cfg Config

	ctxMu    sync.RWMutex
	contexts map[core.CtxID]*ContextState

	qps atomic.Pointer[[]*QPState]

	tlb *mmu.TLB // RRPP-side translations, ASID-tagged per context

	itt     []ittEntry
	ittFree []uint16

	// Per-destination request batch builders (RGP side). txq[d] is the
	// batch under construction toward node d; txdirty lists destinations
	// touched since the last flushAll (txpending dedups it, keeping it
	// bounded by the node count), flushed after every scheduling pass.
	txq       []*proto.Batch
	txdirty   []core.NodeID
	txpending []bool

	doorbell chan struct{}
	control  chan ctrlEvent // failed node/link notifications
	stopped  chan struct{}
	wg       sync.WaitGroup

	cbMu          sync.Mutex
	onFailure     []func(core.NodeID)
	onRestore     []func(core.NodeID)
	onLinkFailure []func(a, b core.NodeID)
	onLinkRestore []func(a, b core.NodeID)

	// linkSeen/nodeSeen record, per undirected link and per node, the
	// highest event epoch whose callbacks this RMC has delivered. Fabric
	// watchers fire asynchronously, so a Fail/Restore pair racing through
	// the control channel can arrive out of order; callbacks for an event
	// older than one already delivered for the same link or node are
	// suppressed so services always observe the final state last. (ITT
	// flushes are NOT suppressed — a stale failure still identifies
	// transactions whose replies were dropped during the outage window.)
	// Pipeline-goroutine state; no lock.
	linkSeen map[[2]core.NodeID]uint64
	nodeSeen map[core.NodeID]uint64

	Stats Stats
}

// NewRMC creates and starts the RMC pipelines for node id. The transport
// may be the in-process interconnect or a process fabric; the RMC is
// agnostic.
func NewRMC(id core.NodeID, ic fabric.Transport, cfg Config) *RMC {
	cfg = cfg.withDefaults()
	r := &RMC{
		id:        id,
		ic:        ic,
		cfg:       cfg,
		contexts:  make(map[core.CtxID]*ContextState),
		tlb:       mmu.NewTLB(cfg.TLBEntries, cfg.TLBWays),
		itt:       make([]ittEntry, cfg.ITTEntries),
		ittFree:   make([]uint16, 0, cfg.ITTEntries),
		txq:       make([]*proto.Batch, ic.Nodes()),
		txdirty:   make([]core.NodeID, 0, ic.Nodes()),
		txpending: make([]bool, ic.Nodes()),
		doorbell:  make(chan struct{}, 1),
		control:   make(chan ctrlEvent, 16),
		stopped:   make(chan struct{}),
		linkSeen:  make(map[[2]core.NodeID]uint64),
		nodeSeen:  make(map[core.NodeID]uint64),
	}
	for i := cfg.ITTEntries - 1; i >= 0; i-- {
		r.ittFree = append(r.ittFree, uint16(i))
	}
	empty := []*QPState{}
	r.qps.Store(&empty)
	ic.Watch(func(failed core.NodeID, epoch uint64) {
		select {
		case r.control <- ctrlEvent{node: failed, epoch: epoch}:
		case <-ic.Done():
		}
	})
	ic.WatchRestore(func(restored core.NodeID, epoch uint64) {
		select {
		case r.control <- ctrlEvent{node: restored, restore: true, epoch: epoch}:
		case <-ic.Done():
		}
	})
	ic.WatchLink(func(a, b core.NodeID, epoch uint64) {
		select {
		case r.control <- ctrlEvent{node: a, linkTo: b, isLink: true, epoch: epoch}:
		case <-ic.Done():
		}
	})
	ic.WatchLinkRestore(func(a, b core.NodeID, epoch uint64) {
		select {
		case r.control <- ctrlEvent{node: a, linkTo: b, isLink: true, restore: true, epoch: epoch}:
		case <-ic.Done():
		}
	})
	r.wg.Add(2)
	go r.runRGPRCP()
	go r.runRRPP()
	return r
}

// NodeID reports the RMC's fabric address.
func (r *RMC) NodeID() core.NodeID { return r.id }

// OnFailure registers a driver failure-notification callback (§5.1).
// Callbacks accumulate — services and applications can each register one —
// and every registered callback runs, in registration order, on the RMC
// pipeline goroutine; callbacks must not block.
func (r *RMC) OnFailure(fn func(core.NodeID)) {
	r.cbMu.Lock()
	r.onFailure = append(r.onFailure, fn)
	r.cbMu.Unlock()
}

// OnRestore registers a driver node-restore callback — the symmetric half
// of OnFailure, invoked when the fabric reports a previously failed node
// restored. Callbacks accumulate and run on the RMC pipeline goroutine
// without blocking.
func (r *RMC) OnRestore(fn func(core.NodeID)) {
	r.cbMu.Lock()
	r.onRestore = append(r.onRestore, fn)
	r.cbMu.Unlock()
}

// OnLinkFailure registers a driver link-failure callback, invoked after
// the RMC has flushed the in-flight transactions stranded by a failed link
// a↔b. Like OnFailure, callbacks accumulate and run on the RMC pipeline
// goroutine without blocking. Replicated services use them to stop routing
// traffic through nodes the fabric can no longer reach.
func (r *RMC) OnLinkFailure(fn func(a, b core.NodeID)) {
	r.cbMu.Lock()
	r.onLinkFailure = append(r.onLinkFailure, fn)
	r.cbMu.Unlock()
}

// OnLinkRestore registers a driver link-restore callback — the symmetric
// half of OnLinkFailure. Delivery is epoch-ordered per link: if a failure
// and a restore of the same link race through the asynchronous
// notification path, the callback for the older event is suppressed, so
// a service always hears about the link's final state last.
func (r *RMC) OnLinkRestore(fn func(a, b core.NodeID)) {
	r.cbMu.Lock()
	r.onLinkRestore = append(r.onLinkRestore, fn)
	r.cbMu.Unlock()
}

// nodeCallbacks snapshots the registered node failure/restore callback
// lists for invocation outside the lock.
func (r *RMC) nodeCallbacks() ([]func(core.NodeID), []func(core.NodeID)) {
	r.cbMu.Lock()
	defer r.cbMu.Unlock()
	return append([]func(core.NodeID){}, r.onFailure...),
		append([]func(core.NodeID){}, r.onRestore...)
}

// linkCallbacks snapshots the registered link failure/restore callback
// lists for invocation outside the lock.
func (r *RMC) linkCallbacks() ([]func(a, b core.NodeID), []func(a, b core.NodeID)) {
	r.cbMu.Lock()
	defer r.cbMu.Unlock()
	return append([]func(a, b core.NodeID){}, r.onLinkFailure...),
		append([]func(a, b core.NodeID){}, r.onLinkRestore...)
}

// OpenContext registers a context segment of size bytes under ctx id,
// creating the CT entry the RRPP consults for incoming requests.
func (r *RMC) OpenContext(id core.CtxID, size int) (*ContextState, error) {
	as, err := mmu.NewAddressSpace(mmu.ASID(id), size, r.cfg.PageSize)
	if err != nil {
		return nil, err
	}
	cs := &ContextState{ID: id, Seg: NewSegment(size), AS: as, node: r.id}
	r.ctxMu.Lock()
	defer r.ctxMu.Unlock()
	if _, dup := r.contexts[id]; dup {
		return nil, fmt.Errorf("emu: context %d already open on node %d", id, r.id)
	}
	r.contexts[id] = cs
	return cs, nil
}

// Context returns the CT entry for id, or nil.
func (r *RMC) Context(id core.CtxID) *ContextState {
	r.ctxMu.RLock()
	defer r.ctxMu.RUnlock()
	return r.contexts[id]
}

// CreateQP registers a queue pair of the given depth on a context.
func (r *RMC) CreateQP(cs *ContextState, depth int) (*QPState, error) {
	if depth <= 0 {
		depth = 128
	}
	qp := &QPState{
		Ctx:        cs,
		WQ:         qpring.NewWQ(depth),
		CQ:         qpring.NewCQ(depth),
		CQDoorbell: make(chan struct{}, 1),
		rmc:        r,
	}
	for {
		old := r.qps.Load()
		next := make([]*QPState, len(*old)+1)
		copy(next, *old)
		next[len(*old)] = qp
		if r.qps.CompareAndSwap(old, &next) {
			break
		}
	}
	r.Doorbell()
	return qp, nil
}

// Doorbell wakes the RGP/RCP pipeline.
func (r *RMC) Doorbell() {
	select {
	case r.doorbell <- struct{}{}:
	default:
	}
}

// Close stops the pipelines. The interconnect must be closed first (or
// concurrently); Close blocks until both pipeline goroutines exit.
func (r *RMC) Close() {
	select {
	case <-r.stopped:
	default:
		close(r.stopped)
	}
	r.wg.Wait()
}

// ---------------------------------------------------------------------------
// RGP + RCP pipeline (one goroutine, as in RMCemu)

func (r *RMC) runRGPRCP() {
	defer r.wg.Done()
	replies := r.ic.Replies(r.id)
	idle := 0
	sweepEvery := r.cfg.OpTimeout / 4
	sweepAt := time.Now().Add(sweepEvery)
	passes := 0
	for {
		worked := false
		// Time out lost in-flight requests. Checked on a coarse cadence:
		// every 1024 busy passes here, and from the park select below, so
		// both a busy and an idle pipeline bound a lost reply's wait.
		if passes++; passes&1023 == 0 {
			if now := time.Now(); now.After(sweepAt) {
				sweepAt = now.Add(sweepEvery)
				r.sweepOpTimeouts(now)
			}
		}
		// RCP: drain all pending reply batches first; completions free
		// WQ slots and ITT entries that the RGP needs.
		for {
			select {
			case rb := <-replies:
				r.processReplies(rb)
				worked = true
				continue
			default:
			}
			break
		}
		// Control: failed node/link notifications flush matching ITT
		// state.
		select {
		case ev := <-r.control:
			r.handleControl(ev)
			worked = true
		default:
		}
		// RGP: poll registered WQs round-robin into the batch builders,
		// then flush every pending batch. Flushing after the pass (and
		// on every loop iteration before parking) bounds the latency a
		// line can sit in a builder to one scheduling pass.
		if r.pollWQs(replies) {
			worked = true
		}
		r.flushAll(replies)
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < r.cfg.SpinCount {
			continue
		}
		// Park until any work signal arrives, waking on the sweep cadence
		// so a lost reply still times out while the pipeline is idle.
		select {
		case rb := <-replies:
			r.processReplies(rb)
		case ev := <-r.control:
			r.handleControl(ev)
		case <-r.doorbell:
		case <-time.After(sweepEvery):
			now := time.Now()
			sweepAt = now.Add(sweepEvery)
			r.sweepOpTimeouts(now)
		case <-r.stopped:
			return
		case <-r.ic.Done():
			return
		}
		idle = 0
	}
}

// sweepOpTimeouts fails every in-flight ITT entry older than OpTimeout
// with StatusNodeFailure. This is the requester-side bound on a lost
// reply: fabric failure events flush matching entries promptly when this
// side can observe the loss, but a reply dropped by the PEER's side of a
// link (reconnect lag after a process restart) leaves no local trace, and
// without a bound a sync caller blocks forever.
func (r *RMC) sweepOpTimeouts(now time.Time) {
	for idx := range r.itt {
		ent := &r.itt[idx]
		if ent.active && now.Sub(ent.issuedAt) > r.cfg.OpTimeout {
			r.failITT(uint16(idx), core.StatusNodeFailure)
		}
	}
}

// pollWQs runs one RGP pass over all QPs; it reports whether any entry was
// consumed. Generated line packets accumulate in the per-destination batch
// builders; the caller flushes them.
func (r *RMC) pollWQs(replies <-chan *proto.Batch) bool {
	qps := *r.qps.Load()
	consumed := false
	for _, qp := range qps {
		for n := 0; n < r.cfg.PollBudget; n++ {
			if len(r.ittFree) == 0 {
				return consumed // wait for completions to free ITT slots
			}
			e, idx, ok := qp.WQ.Poll()
			if !ok {
				break
			}
			consumed = true
			r.Stats.WQConsumed.Add(1)
			r.generate(qp, e, idx, replies)
		}
	}
	return consumed
}

// generate implements the RGP for one WQ entry (Fig. 3b): validate, init the
// ITT entry, unroll into line-sized request packets, and append them to the
// destination's batch builder. A multi-line transfer thus issues
// ceil(lines/BatchSize) fabric sends instead of one per line.
func (r *RMC) generate(qp *QPState, e qpring.WQEntry, wqIdx uint32, replies <-chan *proto.Batch) {
	length := e.Length
	if e.Op.IsAtomic() {
		length = 8
	}
	if length == 0 || length > core.MaxRequestLen {
		r.complete(qp, wqIdx, core.StatusBoundsError)
		return
	}
	var buf *Segment
	switch e.Op {
	case core.OpRead, core.OpWrite, core.OpWriteNotify:
		buf = qp.Ctx.Buffer(e.Buf)
		if buf == nil || e.BufOff+uint64(length) > uint64(buf.Size()) {
			r.complete(qp, wqIdx, core.StatusBoundsError)
			return
		}
	case core.OpFetchAdd, core.OpCompareSwap:
		// Result is optionally delivered to a local buffer; Buf of
		// ^uint32(0) means "discard result".
		if e.Buf != ^uint32(0) {
			buf = qp.Ctx.Buffer(e.Buf)
			if buf == nil || e.BufOff+8 > uint64(buf.Size()) {
				r.complete(qp, wqIdx, core.StatusBoundsError)
				return
			}
		}
		if e.Offset%8 != 0 || e.Offset%core.CacheLineSize > core.CacheLineSize-8 {
			r.complete(qp, wqIdx, core.StatusBadAlign)
			return
		}
	default:
		r.complete(qp, wqIdx, core.StatusBoundsError)
		return
	}

	// Allocate the ITT entry; tid packs index and generation so stale
	// replies from a flushed transaction are discarded.
	idx := r.ittFree[len(r.ittFree)-1]
	r.ittFree = r.ittFree[:len(r.ittFree)-1]
	ent := &r.itt[idx]
	ent.gen++
	nLines := uint32(core.Lines(int(length)))
	*ent = ittEntry{
		active: true, gen: ent.gen, qp: qp, wqIdx: wqIdx,
		op: e.Op, node: e.Node, buf: buf, bufOff: e.BufOff,
		remaining: nLines, status: core.StatusOK,
		linkEpoch: r.ic.LinkEpoch(), issuedAt: time.Now(),
	}
	tid := core.Tid(uint16(idx) | ent.gen<<12)

	// Unroll into line transactions (§4.2 RGP).
	for i := uint32(0); i < nLines; i++ {
		lineLen := uint32(core.CacheLineSize)
		if rem := length - i*core.CacheLineSize; rem < lineLen {
			lineLen = rem
		}
		pkt := proto.AllocPacket()
		pkt.Kind, pkt.Op = proto.KindRequest, e.Op
		pkt.Dst, pkt.Src, pkt.Ctx, pkt.Tid = e.Node, r.id, qp.Ctx.ID, tid
		pkt.Offset = e.Offset + uint64(i)*core.CacheLineSize
		pkt.LineIdx, pkt.Aux = i, lineLen
		if i == nLines-1 {
			pkt.Flags |= proto.FlagLast
		}
		switch e.Op {
		case core.OpWrite, core.OpWriteNotify:
			payload := pkt.AllocPayload(int(lineLen))
			if err := buf.ReadAt(int(e.BufOff+uint64(i)*core.CacheLineSize), payload); err != nil {
				proto.FreePacket(pkt)
				r.failITT(idx, core.StatusBoundsError)
				return
			}
		case core.OpFetchAdd:
			binary.LittleEndian.PutUint64(pkt.AllocPayload(8), e.Arg0)
		case core.OpCompareSwap:
			payload := pkt.AllocPayload(16)
			binary.LittleEndian.PutUint64(payload, e.Arg0)
			binary.LittleEndian.PutUint64(payload[8:], e.Arg1)
		}
		r.queueRequest(pkt, replies)
		if !ent.active {
			// The destination became unreachable and a batch flush
			// failed this transaction; stop unrolling it.
			return
		}
	}
}

// queueRequest appends a request packet to its destination's batch builder,
// flushing the builder once it reaches the configured batch size.
func (r *RMC) queueRequest(pkt *proto.Packet, replies <-chan *proto.Batch) {
	dst := int(pkt.Dst)
	if dst < 0 || dst >= len(r.txq) {
		// Out-of-fabric destination: fail the transaction immediately.
		// (Capture the tid before the free resets the packet.)
		tid := pkt.Tid
		proto.FreePacket(pkt)
		r.failTid(tid, core.StatusNodeFailure)
		return
	}
	b := r.txq[dst]
	if b == nil {
		b = proto.AllocBatch()
		r.txq[dst] = b
		if !r.txpending[dst] {
			r.txpending[dst] = true
			r.txdirty = append(r.txdirty, pkt.Dst)
		}
	}
	if !b.Append(pkt) {
		// Unreachable while BatchSize <= proto.MaxBatch (withDefaults
		// clamps it) and builders are per-destination; a silent drop
		// here would hang the transaction, so fail loudly.
		panic("emu: batch builder rejected packet (BatchSize > proto.MaxBatch?)")
	}
	if b.Len() >= r.cfg.BatchSize {
		r.flushDst(dst, replies)
	}
}

// flushDst sends the batch pending toward dst, if any. On fabric failure it
// completes every transaction with a line in the batch with
// StatusNodeFailure (replies already in flight are discarded by the
// generation check) and recycles the batch.
func (r *RMC) flushDst(dst int, replies <-chan *proto.Batch) {
	b := r.txq[dst]
	if b == nil {
		return
	}
	r.txq[dst] = nil
	lines := uint64(b.Len()) // before the send: success forfeits ownership
	if err := r.sendDraining(b, replies); err != nil {
		for _, pkt := range b.Packets() {
			r.failTid(pkt.Tid, core.StatusNodeFailure)
		}
		proto.FreeBatchPackets(b)
		return
	}
	r.Stats.LinesSent.Add(lines)
	r.Stats.BatchesSent.Add(1)
}

// flushAll flushes every pending batch builder.
func (r *RMC) flushAll(replies <-chan *proto.Batch) {
	if len(r.txdirty) == 0 {
		return
	}
	for _, dst := range r.txdirty {
		r.txpending[dst] = false
		r.flushDst(int(dst), replies)
	}
	r.txdirty = r.txdirty[:0]
}

// sendDraining injects a request batch, continuing to drain the reply lane
// while the destination lane is out of credits. Selecting on the lane send
// and the reply lane together avoids both deadlock (request/reply cycles)
// and lost wakeups (waiting for a reply that will never come because
// nothing of ours is in flight).
func (r *RMC) sendDraining(b *proto.Batch, replies <-chan *proto.Batch) error {
	// Statistics must be captured before the send: a delivered batch is
	// owned (and may already be recycled) by the receiver.
	packets, wire := b.Len(), b.WireSize()
	for {
		lane, err := r.ic.LaneFor(proto.KindRequest, r.id, b.Dst())
		if err != nil {
			return err
		}
		select {
		case lane <- b:
			r.ic.Account(proto.KindRequest, packets, wire)
			return nil
		case rb := <-replies:
			r.processReplies(rb)
		case <-r.stopped:
			return fabric.ErrClosed
		case <-r.ic.Done():
			return fabric.ErrClosed
		}
	}
}

// failTid fails the in-flight transaction identified by tid, if still
// active under the same generation.
func (r *RMC) failTid(tid core.Tid, status core.Status) {
	idx := uint16(tid) & 0xFFF
	gen := uint16(tid) >> 12
	if int(idx) >= len(r.itt) {
		return
	}
	if ent := &r.itt[idx]; ent.active && ent.gen&0xF == gen {
		r.failITT(idx, status)
	}
}

// failITT completes an in-flight ITT entry immediately with status and
// deactivates it; late replies are dropped by the generation check.
func (r *RMC) failITT(idx uint16, status core.Status) {
	ent := &r.itt[idx]
	if !ent.active {
		return
	}
	qp, wqIdx := ent.qp, ent.wqIdx
	ent.active = false
	r.ittFree = append(r.ittFree, idx)
	r.complete(qp, wqIdx, status)
}

// handleControl dispatches a fabric health notification.
func (r *RMC) handleControl(ev ctrlEvent) {
	if ev.isLink {
		if ev.restore {
			r.deliverLinkRestore(ev.node, ev.linkTo, ev.epoch)
		} else {
			r.flushLink(ev.node, ev.linkTo, ev.epoch)
		}
		return
	}
	if ev.restore {
		if !r.deliverNodeCallbacks(ev.node, ev.epoch) {
			return
		}
		_, cbs := r.nodeCallbacks()
		for _, fn := range cbs {
			fn(ev.node)
		}
		return
	}
	r.flushFailed(ev.node, ev.epoch)
}

// deliverNodeCallbacks reports whether callbacks for a node event at epoch
// should run, recording the epoch as delivered when they should — the
// node-level twin of deliverCallbacks.
func (r *RMC) deliverNodeCallbacks(id core.NodeID, epoch uint64) bool {
	if epoch <= r.nodeSeen[id] {
		return false
	}
	r.nodeSeen[id] = epoch
	return true
}

// linkKey normalizes an undirected link for the linkSeen map.
func linkKey(a, b core.NodeID) [2]core.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]core.NodeID{a, b}
}

// deliverCallbacks reports whether callbacks for a link event at epoch
// should run, recording the epoch as delivered when they should. An event
// older than one already delivered for the same link is stale: a racing
// newer Fail/Restore of that link overtook it in the notification path.
func (r *RMC) deliverCallbacks(a, b core.NodeID, epoch uint64) bool {
	k := linkKey(a, b)
	if epoch <= r.linkSeen[k] {
		return false
	}
	r.linkSeen[k] = epoch
	return true
}

// deliverLinkRestore runs the link-restore callbacks for a↔b, unless a
// newer event for the same link was already delivered. Restores flush
// nothing: no in-flight transaction is endangered by a link coming back.
func (r *RMC) deliverLinkRestore(a, b core.NodeID, epoch uint64) {
	if !r.deliverCallbacks(a, b, epoch) {
		return
	}
	_, cbs := r.linkCallbacks()
	for _, fn := range cbs {
		fn(a, b)
	}
}

// flushFailed completes every in-flight transaction addressed to a failed
// node with StatusNodeFailure and notifies the driver. The ITT flush runs
// even for a stale event (transactions issued before the failure lost
// their replies regardless of a racing restore); only the driver
// callbacks are epoch-gated.
func (r *RMC) flushFailed(failed core.NodeID, epoch uint64) {
	for i := range r.itt {
		if r.itt[i].active && r.itt[i].node == failed {
			r.failITT(uint16(i), core.StatusNodeFailure)
		}
	}
	if !r.deliverNodeCallbacks(failed, epoch) {
		return
	}
	cbs, _ := r.nodeCallbacks()
	for _, fn := range cbs {
		fn(failed)
	}
}

// flushLink completes every in-flight transaction issued before the
// link-failure epoch whose request or reply route crosses the failed link
// a↔b with StatusNodeFailure. Replies crossing a failed link are dropped
// by the fabric, so without this flush those transactions would hang
// forever; the requester treats an unreachable destination like a failed
// one (§5.1). The check is against the specific dead link, not the route's
// current health — packets dropped while the link was down stay dropped
// even if RestoreLink races ahead of this notification — while the epoch
// stamp protects the converse race: a transaction issued after the restore
// must not be killed by the stale notification. (With dimension-order
// routing the reply route can cross different links than the request
// route, hence both directions.)
func (r *RMC) flushLink(a, b core.NodeID, epoch uint64) {
	for i := range r.itt {
		//lint:ignore epochorder link epochs are the interconnect's plain event counter, not packed (term,epoch) authority words
		if !r.itt[i].active || r.itt[i].linkEpoch >= epoch {
			continue
		}
		dst := r.itt[i].node
		if r.ic.RouteCrosses(r.id, dst, a, b) || r.ic.RouteCrosses(r.id, dst, b, a) ||
			r.ic.RouteCrosses(dst, r.id, a, b) || r.ic.RouteCrosses(dst, r.id, b, a) {
			r.failITT(uint16(i), core.StatusNodeFailure)
		}
	}
	if !r.deliverCallbacks(a, b, epoch) {
		return
	}
	cbs, _ := r.linkCallbacks()
	for _, fn := range cbs {
		fn(a, b)
	}
}

// processReplies implements the RCP over one reply batch (Fig. 3b),
// recycling every packet and the batch itself back to the proto pool.
func (r *RMC) processReplies(rb *proto.Batch) {
	for _, pkt := range rb.Packets() {
		r.processReply(pkt)
		proto.FreePacket(pkt)
	}
	proto.FreeBatch(rb)
}

// processReply locates the ITT entry by tid, stores read/atomic payloads
// into the local buffer, and on the final line posts the CQ completion.
func (r *RMC) processReply(pkt *proto.Packet) {
	r.Stats.RepliesRecv.Add(1)
	idx := uint16(pkt.Tid) & 0xFFF
	gen := uint16(pkt.Tid) >> 12
	if int(idx) >= len(r.itt) {
		return
	}
	ent := &r.itt[idx]
	if !ent.active || ent.gen&0xF != gen {
		return // stale reply from a flushed transaction
	}
	if pkt.Status != core.StatusOK {
		if ent.status == core.StatusOK {
			ent.status = pkt.Status
		}
	} else if (ent.op == core.OpRead || ent.op.IsAtomic()) && ent.buf != nil && len(pkt.Payload) > 0 {
		off := int(ent.bufOff + uint64(pkt.LineIdx)*core.CacheLineSize)
		if err := ent.buf.WriteAt(off, pkt.Payload); err != nil && ent.status == core.StatusOK {
			ent.status = core.StatusBoundsError
		}
	}
	ent.remaining--
	if ent.remaining == 0 {
		qp, wqIdx, status := ent.qp, ent.wqIdx, ent.status
		ent.active = false
		r.ittFree = append(r.ittFree, idx)
		r.complete(qp, wqIdx, status)
	}
}

// complete posts a CQ entry and rings the QP's completion doorbell.
func (r *RMC) complete(qp *QPState, wqIdx uint32, status core.Status) {
	r.Stats.Completions.Add(1)
	if status != core.StatusOK {
		r.Stats.Errors.Add(1)
	}
	if !qp.CQ.Post(qpring.CQEntry{WQIndex: wqIdx, Status: status}) {
		// CQ is sized to the WQ, so this indicates a harness bug;
		// surface it loudly rather than dropping a completion.
		panic("emu: completion queue overflow")
	}
	select {
	case qp.CQDoorbell <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------------
// RRPP pipeline

func (r *RMC) runRRPP() {
	defer r.wg.Done()
	requests := r.ic.Requests(r.id)
	for {
		select {
		case b := <-requests:
			r.processRequests(b)
		case <-r.stopped:
			return
		case <-r.ic.Done():
			return
		}
	}
}

// processRequests implements the RRPP over one request batch (Fig. 3b):
// stateless handling of each line transaction using only the packet header
// and local CT state, always answering with exactly one reply per request.
// Replies toward the same requester are re-batched, so a k-line inbound
// batch produces one outbound reply batch, and every request packet is
// recycled to the proto pool once answered.
func (r *RMC) processRequests(b *proto.Batch) {
	var rb *proto.Batch
	for _, pkt := range b.Packets() {
		r.Stats.RequestsRecv.Add(1)
		reply := r.handle(pkt)
		proto.FreePacket(pkt)
		if rb != nil && !rb.Append(reply) {
			r.sendReplies(rb)
			rb = nil
		}
		if rb == nil {
			rb = proto.AllocBatch()
			rb.Append(reply)
		}
	}
	proto.FreeBatch(b)
	if rb != nil {
		r.sendReplies(rb)
	}
}

// sendReplies injects a reply batch. Injection may block on credits; the
// reply lane always drains because RCPs consume unconditionally. If the
// requester became unreachable the batch is dropped (its RMC flushes the
// transactions via the ITT).
func (r *RMC) sendReplies(rb *proto.Batch) {
	if err := r.ic.SendBatch(rb); err != nil {
		proto.FreeBatchPackets(rb)
	}
}

// handle processes one request packet and returns its pool-allocated reply.
func (r *RMC) handle(pkt *proto.Packet) *proto.Packet {
	rp := pkt.ReplyInto(proto.AllocPacket(), core.StatusOK)
	cs := r.Context(pkt.Ctx)
	if cs == nil {
		rp.Status = core.StatusNoContext
		return rp
	}
	n := uint64(pkt.Aux)
	if pkt.Op.IsWrite() {
		n = uint64(len(pkt.Payload))
	}
	if pkt.Op.IsAtomic() {
		n = 8
	}
	if n == 0 || n > core.CacheLineSize || !cs.AS.InBounds(pkt.Offset, n) {
		rp.Status = core.StatusBoundsError
		return rp
	}
	// Translate through the RMC TLB and the context's page table; with
	// linear mappings this cannot fail in bounds, but the walk is the
	// real control path (and the miss counter feeds the ablations).
	if _, walks, ok := cs.AS.Translate(r.tlb, pkt.Offset); !ok {
		rp.Status = core.StatusBoundsError
		return rp
	} else if walks > 0 {
		r.Stats.TLBMisses.Add(1)
	}

	switch pkt.Op {
	case core.OpRead:
		if err := cs.Seg.ReadAt(int(pkt.Offset), rp.AllocPayload(int(n))); err != nil {
			rp.Payload = nil
			rp.Status = core.StatusBoundsError
		}
		return rp
	case core.OpWrite, core.OpWriteNotify:
		if err := cs.Seg.WriteAt(int(pkt.Offset), pkt.Payload); err != nil {
			rp.Status = core.StatusBoundsError
			return rp
		}
		// The remote-interrupt extension (§8): the final line of a
		// write-with-notify raises the context's handler. Statelessly
		// tied to FlagLast — the request needs no destination-side
		// tracking.
		if pkt.Op == core.OpWriteNotify && pkt.IsLast() {
			if fn := cs.notify.Load(); fn != nil {
				(*fn)(pkt.Src, pkt.Offset-uint64(pkt.LineIdx)*core.CacheLineSize, int(pkt.Aux)+int(pkt.LineIdx)*core.CacheLineSize)
			}
		}
		return rp
	case core.OpFetchAdd:
		if len(pkt.Payload) < 8 {
			rp.Status = core.StatusBoundsError
			return rp
		}
		delta := binary.LittleEndian.Uint64(pkt.Payload)
		old, err := cs.Seg.FetchAdd64(int(pkt.Offset), delta)
		if err != nil {
			rp.Status = core.StatusBadAlign
			return rp
		}
		binary.LittleEndian.PutUint64(rp.AllocPayload(8), old)
		return rp
	case core.OpCompareSwap:
		if len(pkt.Payload) < 16 {
			rp.Status = core.StatusBoundsError
			return rp
		}
		expected := binary.LittleEndian.Uint64(pkt.Payload)
		newv := binary.LittleEndian.Uint64(pkt.Payload[8:])
		old, err := cs.Seg.CompareSwap64(int(pkt.Offset), expected, newv)
		if err != nil {
			rp.Status = core.StatusBadAlign
			return rp
		}
		binary.LittleEndian.PutUint64(rp.AllocPayload(8), old)
		return rp
	default:
		rp.Status = core.StatusBoundsError
		return rp
	}
}

// TLBHitRate exposes the RRPP translation hit rate.
func (r *RMC) TLBHitRate() float64 { return r.tlb.HitRate() }
