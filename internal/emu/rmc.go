package emu

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sonuma/internal/core"
	"sonuma/internal/fabric"
	"sonuma/internal/mmu"
	"sonuma/internal/proto"
	"sonuma/internal/qpring"
)

// Config holds the RMC emulation parameters. The zero value selects the
// defaults below.
type Config struct {
	// ITTEntries bounds concurrently in-flight WQ requests per node
	// (Inflight Transaction Table size). Max 4096 (tid packs a 12-bit
	// index plus a 4-bit generation).
	ITTEntries int
	// TLBEntries and TLBWays size the RMC's TLB (Table 1: 32 entries).
	TLBEntries int
	TLBWays    int
	// PageSize for context segments (Table 1: 8 KB).
	PageSize int
	// PollBudget bounds WQ entries consumed per QP per scheduling pass,
	// so one busy QP cannot starve others.
	PollBudget int
	// SpinCount is how many empty passes the RGP/RCP pipeline makes
	// before parking on its doorbell.
	SpinCount int
}

const maxITT = 4096

func (c Config) withDefaults() Config {
	if c.ITTEntries <= 0 {
		c.ITTEntries = 1024
	}
	if c.ITTEntries > maxITT {
		c.ITTEntries = maxITT
	}
	if c.TLBEntries <= 0 {
		c.TLBEntries = 32
	}
	if c.TLBWays <= 0 {
		c.TLBWays = 4
	}
	if c.PageSize <= 0 {
		c.PageSize = mmu.DefaultPageSize
	}
	if c.PollBudget <= 0 {
		c.PollBudget = 32
	}
	if c.SpinCount <= 0 {
		c.SpinCount = 128
	}
	return c
}

// Stats are per-RMC counters exported for the experiment harness.
type Stats struct {
	WQConsumed   atomic.Uint64 // WQ entries accepted by the RGP
	LinesSent    atomic.Uint64 // request packets injected
	RepliesRecv  atomic.Uint64 // reply packets processed by the RCP
	RequestsRecv atomic.Uint64 // request packets processed by the RRPP
	Completions  atomic.Uint64 // CQ entries posted
	Errors       atomic.Uint64 // non-OK completions
	TLBMisses    atomic.Uint64 // RRPP-side translation misses
}

// NotifyFunc handles a remote-interrupt notification raised by an
// OpWriteNotify request (§8). It runs on the RRPP pipeline goroutine and
// must not block; typical handlers forward into a channel.
type NotifyFunc func(src core.NodeID, offset uint64, n int)

// ContextState is the per-node view of one global address space: the CT
// entry (§4.2) holding the local context segment, its address space /
// page-table root, and the registered local buffers.
type ContextState struct {
	ID      core.CtxID
	Seg     *Segment
	AS      *mmu.AddressSpace
	node    core.NodeID
	notify  atomic.Pointer[NotifyFunc]
	mu      sync.RWMutex
	buffers []*Segment
}

// SetNotifyHandler installs (or, with nil, removes) the context's remote-
// interrupt handler.
func (cs *ContextState) SetNotifyHandler(fn NotifyFunc) {
	if fn == nil {
		cs.notify.Store(nil)
		return
	}
	cs.notify.Store(&fn)
}

// NodeID reports the owning node.
func (cs *ContextState) NodeID() core.NodeID { return cs.node }

// RegisterBuffer pins a fresh local buffer of size bytes for use as a
// source/destination of remote operations and returns its id.
func (cs *ContextState) RegisterBuffer(size int) (uint32, *Segment, error) {
	if size <= 0 {
		return 0, nil, fmt.Errorf("emu: invalid buffer size %d", size)
	}
	b := NewSegment(size)
	cs.mu.Lock()
	id := uint32(len(cs.buffers))
	cs.buffers = append(cs.buffers, b)
	cs.mu.Unlock()
	return id, b, nil
}

// Buffer returns the registered buffer with the given id.
func (cs *ContextState) Buffer(id uint32) *Segment {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	if int(id) >= len(cs.buffers) {
		return nil
	}
	return cs.buffers[id]
}

// QPState is one registered queue pair: the application posts WQ entries
// and polls CQ entries; the RMC does the reverse. A QP belongs to one
// context and must be driven by a single application goroutine.
type QPState struct {
	Ctx *ContextState
	WQ  *qpring.WQ
	CQ  *qpring.CQ
	// CQDoorbell is kicked (non-blocking) whenever a completion is
	// posted, so waiters can park instead of spinning indefinitely.
	CQDoorbell chan struct{}
	rmc        *RMC
}

// Doorbell wakes the RGP after a WQ post (the hardware analogue is the RMC
// noticing the cached WQ tail change; the channel makes parking efficient).
func (qp *QPState) Doorbell() {
	select {
	case qp.rmc.doorbell <- struct{}{}:
	default:
	}
}

// ittEntry tracks one in-flight WQ request (§4.2: "the ITT ... keeps track
// of the progress of each WQ request", indexed by tid).
type ittEntry struct {
	active    bool
	gen       uint16
	qp        *QPState
	wqIdx     uint32
	op        core.Op
	node      core.NodeID
	buf       *Segment
	bufOff    uint64
	remaining uint32
	status    core.Status
}

// RMC is the emulated remote memory controller for one node: the Context
// Table, the ITT, and the three pipelines of Fig. 3, with RGP+RCP sharing
// one goroutine and RRPP running on another (exactly the thread split of
// the paper's RMCemu, §7.1).
type RMC struct {
	id  core.NodeID
	ic  *fabric.Interconnect
	cfg Config

	ctxMu    sync.RWMutex
	contexts map[core.CtxID]*ContextState

	qps atomic.Pointer[[]*QPState]

	tlb *mmu.TLB // RRPP-side translations, ASID-tagged per context

	itt     []ittEntry
	ittFree []uint16

	doorbell chan struct{}
	control  chan core.NodeID // failed-node notifications
	stopped  chan struct{}
	wg       sync.WaitGroup

	onFailure func(core.NodeID)

	Stats Stats
}

// NewRMC creates and starts the RMC pipelines for node id.
func NewRMC(id core.NodeID, ic *fabric.Interconnect, cfg Config) *RMC {
	cfg = cfg.withDefaults()
	r := &RMC{
		id:       id,
		ic:       ic,
		cfg:      cfg,
		contexts: make(map[core.CtxID]*ContextState),
		tlb:      mmu.NewTLB(cfg.TLBEntries, cfg.TLBWays),
		itt:      make([]ittEntry, cfg.ITTEntries),
		ittFree:  make([]uint16, 0, cfg.ITTEntries),
		doorbell: make(chan struct{}, 1),
		control:  make(chan core.NodeID, 16),
		stopped:  make(chan struct{}),
	}
	for i := cfg.ITTEntries - 1; i >= 0; i-- {
		r.ittFree = append(r.ittFree, uint16(i))
	}
	empty := []*QPState{}
	r.qps.Store(&empty)
	ic.Watch(func(failed core.NodeID) {
		select {
		case r.control <- failed:
		case <-ic.Done():
		}
	})
	r.wg.Add(2)
	go r.runRGPRCP()
	go r.runRRPP()
	return r
}

// NodeID reports the RMC's fabric address.
func (r *RMC) NodeID() core.NodeID { return r.id }

// OnFailure registers the driver's failure-notification callback (§5.1).
// It is invoked from the RMC pipeline goroutine; callbacks must not block.
func (r *RMC) OnFailure(fn func(core.NodeID)) { r.onFailure = fn }

// OpenContext registers a context segment of size bytes under ctx id,
// creating the CT entry the RRPP consults for incoming requests.
func (r *RMC) OpenContext(id core.CtxID, size int) (*ContextState, error) {
	as, err := mmu.NewAddressSpace(mmu.ASID(id), size, r.cfg.PageSize)
	if err != nil {
		return nil, err
	}
	cs := &ContextState{ID: id, Seg: NewSegment(size), AS: as, node: r.id}
	r.ctxMu.Lock()
	defer r.ctxMu.Unlock()
	if _, dup := r.contexts[id]; dup {
		return nil, fmt.Errorf("emu: context %d already open on node %d", id, r.id)
	}
	r.contexts[id] = cs
	return cs, nil
}

// Context returns the CT entry for id, or nil.
func (r *RMC) Context(id core.CtxID) *ContextState {
	r.ctxMu.RLock()
	defer r.ctxMu.RUnlock()
	return r.contexts[id]
}

// CreateQP registers a queue pair of the given depth on a context.
func (r *RMC) CreateQP(cs *ContextState, depth int) (*QPState, error) {
	if depth <= 0 {
		depth = 128
	}
	qp := &QPState{
		Ctx:        cs,
		WQ:         qpring.NewWQ(depth),
		CQ:         qpring.NewCQ(depth),
		CQDoorbell: make(chan struct{}, 1),
		rmc:        r,
	}
	for {
		old := r.qps.Load()
		next := make([]*QPState, len(*old)+1)
		copy(next, *old)
		next[len(*old)] = qp
		if r.qps.CompareAndSwap(old, &next) {
			break
		}
	}
	r.Doorbell()
	return qp, nil
}

// Doorbell wakes the RGP/RCP pipeline.
func (r *RMC) Doorbell() {
	select {
	case r.doorbell <- struct{}{}:
	default:
	}
}

// Close stops the pipelines. The interconnect must be closed first (or
// concurrently); Close blocks until both pipeline goroutines exit.
func (r *RMC) Close() {
	select {
	case <-r.stopped:
	default:
		close(r.stopped)
	}
	r.wg.Wait()
}

// ---------------------------------------------------------------------------
// RGP + RCP pipeline (one goroutine, as in RMCemu)

func (r *RMC) runRGPRCP() {
	defer r.wg.Done()
	replies := r.ic.Replies(r.id)
	idle := 0
	for {
		worked := false
		// RCP: drain all pending replies first; completions free WQ
		// slots and ITT entries that the RGP needs.
		for {
			select {
			case pkt := <-replies:
				r.processReply(pkt)
				worked = true
				continue
			default:
			}
			break
		}
		// Control: failed-node notifications flush matching ITT state.
		select {
		case failed := <-r.control:
			r.flushFailed(failed)
			worked = true
		default:
		}
		// RGP: poll registered WQs round-robin.
		if r.pollWQs(replies) {
			worked = true
		}
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < r.cfg.SpinCount {
			continue
		}
		// Park until any work signal arrives.
		select {
		case pkt := <-replies:
			r.processReply(pkt)
		case failed := <-r.control:
			r.flushFailed(failed)
		case <-r.doorbell:
		case <-r.stopped:
			return
		case <-r.ic.Done():
			return
		}
		idle = 0
	}
}

// pollWQs runs one RGP pass over all QPs; it reports whether any entry was
// consumed.
func (r *RMC) pollWQs(replies <-chan *proto.Packet) bool {
	qps := *r.qps.Load()
	consumed := false
	for _, qp := range qps {
		for n := 0; n < r.cfg.PollBudget; n++ {
			if len(r.ittFree) == 0 {
				return consumed // wait for completions to free ITT slots
			}
			e, idx, ok := qp.WQ.Poll()
			if !ok {
				break
			}
			consumed = true
			r.Stats.WQConsumed.Add(1)
			r.generate(qp, e, idx, replies)
		}
	}
	return consumed
}

// generate implements the RGP for one WQ entry (Fig. 3b): validate, init the
// ITT entry, unroll into line-sized request packets, and inject.
func (r *RMC) generate(qp *QPState, e qpring.WQEntry, wqIdx uint32, replies <-chan *proto.Packet) {
	length := e.Length
	if e.Op.IsAtomic() {
		length = 8
	}
	if length == 0 || length > core.MaxRequestLen {
		r.complete(qp, wqIdx, core.StatusBoundsError)
		return
	}
	var buf *Segment
	switch e.Op {
	case core.OpRead, core.OpWrite, core.OpWriteNotify:
		buf = qp.Ctx.Buffer(e.Buf)
		if buf == nil || e.BufOff+uint64(length) > uint64(buf.Size()) {
			r.complete(qp, wqIdx, core.StatusBoundsError)
			return
		}
	case core.OpFetchAdd, core.OpCompareSwap:
		// Result is optionally delivered to a local buffer; Buf of
		// ^uint32(0) means "discard result".
		if e.Buf != ^uint32(0) {
			buf = qp.Ctx.Buffer(e.Buf)
			if buf == nil || e.BufOff+8 > uint64(buf.Size()) {
				r.complete(qp, wqIdx, core.StatusBoundsError)
				return
			}
		}
		if e.Offset%8 != 0 || e.Offset%core.CacheLineSize > core.CacheLineSize-8 {
			r.complete(qp, wqIdx, core.StatusBadAlign)
			return
		}
	default:
		r.complete(qp, wqIdx, core.StatusBoundsError)
		return
	}

	// Allocate the ITT entry; tid packs index and generation so stale
	// replies from a flushed transaction are discarded.
	idx := r.ittFree[len(r.ittFree)-1]
	r.ittFree = r.ittFree[:len(r.ittFree)-1]
	ent := &r.itt[idx]
	ent.gen++
	nLines := uint32(core.Lines(int(length)))
	*ent = ittEntry{
		active: true, gen: ent.gen, qp: qp, wqIdx: wqIdx,
		op: e.Op, node: e.Node, buf: buf, bufOff: e.BufOff,
		remaining: nLines, status: core.StatusOK,
	}
	tid := core.Tid(uint16(idx) | ent.gen<<12)

	// Unroll into line transactions (§4.2 RGP).
	for i := uint32(0); i < nLines; i++ {
		lineLen := uint32(core.CacheLineSize)
		if rem := length - i*core.CacheLineSize; rem < lineLen {
			lineLen = rem
		}
		pkt := &proto.Packet{
			Kind: proto.KindRequest, Op: e.Op,
			Dst: e.Node, Src: r.id, Ctx: qp.Ctx.ID, Tid: tid,
			Offset:  e.Offset + uint64(i)*core.CacheLineSize,
			LineIdx: i, Aux: lineLen,
		}
		if i == nLines-1 {
			pkt.Flags |= proto.FlagLast
		}
		switch e.Op {
		case core.OpWrite, core.OpWriteNotify:
			payload := make([]byte, lineLen)
			if err := buf.ReadAt(int(e.BufOff+uint64(i)*core.CacheLineSize), payload); err != nil {
				r.failITT(idx, core.StatusBoundsError)
				return
			}
			pkt.Payload = payload
		case core.OpFetchAdd:
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, e.Arg0)
			pkt.Payload = payload
		case core.OpCompareSwap:
			payload := make([]byte, 16)
			binary.LittleEndian.PutUint64(payload, e.Arg0)
			binary.LittleEndian.PutUint64(payload[8:], e.Arg1)
			pkt.Payload = payload
		}
		if err := r.sendDraining(pkt, replies); err != nil {
			// Destination unreachable: flush what remains. Replies
			// already in flight are discarded by the generation
			// check.
			r.failITT(idx, core.StatusNodeFailure)
			return
		}
		r.Stats.LinesSent.Add(1)
	}
}

// sendDraining injects a request, continuing to drain the reply lane while
// the destination lane is out of credits. Selecting on the lane send and
// the reply lane together avoids both deadlock (request/reply cycles) and
// lost wakeups (waiting for a reply that will never come because nothing of
// ours is in flight).
func (r *RMC) sendDraining(pkt *proto.Packet, replies <-chan *proto.Packet) error {
	for {
		lane, err := r.ic.LaneFor(pkt)
		if err != nil {
			return err
		}
		select {
		case lane <- pkt:
			r.ic.Account(pkt)
			return nil
		case rp := <-replies:
			r.processReply(rp)
		case <-r.stopped:
			return fabric.ErrClosed
		case <-r.ic.Done():
			return fabric.ErrClosed
		}
	}
}

// failITT completes an in-flight ITT entry immediately with status and
// deactivates it; late replies are dropped by the generation check.
func (r *RMC) failITT(idx uint16, status core.Status) {
	ent := &r.itt[idx]
	if !ent.active {
		return
	}
	qp, wqIdx := ent.qp, ent.wqIdx
	ent.active = false
	r.ittFree = append(r.ittFree, idx)
	r.complete(qp, wqIdx, status)
}

// flushFailed completes every in-flight transaction addressed to a failed
// node with StatusNodeFailure and notifies the driver.
func (r *RMC) flushFailed(failed core.NodeID) {
	for i := range r.itt {
		if r.itt[i].active && r.itt[i].node == failed {
			r.failITT(uint16(i), core.StatusNodeFailure)
		}
	}
	if r.onFailure != nil {
		r.onFailure(failed)
	}
}

// processReply implements the RCP (Fig. 3b): locate the ITT entry by tid,
// store read/atomic payloads into the local buffer, and on the final line
// post the CQ completion.
func (r *RMC) processReply(pkt *proto.Packet) {
	r.Stats.RepliesRecv.Add(1)
	idx := uint16(pkt.Tid) & 0xFFF
	gen := uint16(pkt.Tid) >> 12
	if int(idx) >= len(r.itt) {
		return
	}
	ent := &r.itt[idx]
	if !ent.active || ent.gen&0xF != gen {
		return // stale reply from a flushed transaction
	}
	if pkt.Status != core.StatusOK {
		if ent.status == core.StatusOK {
			ent.status = pkt.Status
		}
	} else if (ent.op == core.OpRead || ent.op.IsAtomic()) && ent.buf != nil && len(pkt.Payload) > 0 {
		off := int(ent.bufOff + uint64(pkt.LineIdx)*core.CacheLineSize)
		if err := ent.buf.WriteAt(off, pkt.Payload); err != nil && ent.status == core.StatusOK {
			ent.status = core.StatusBoundsError
		}
	}
	ent.remaining--
	if ent.remaining == 0 {
		qp, wqIdx, status := ent.qp, ent.wqIdx, ent.status
		ent.active = false
		r.ittFree = append(r.ittFree, idx)
		r.complete(qp, wqIdx, status)
	}
}

// complete posts a CQ entry and rings the QP's completion doorbell.
func (r *RMC) complete(qp *QPState, wqIdx uint32, status core.Status) {
	r.Stats.Completions.Add(1)
	if status != core.StatusOK {
		r.Stats.Errors.Add(1)
	}
	if !qp.CQ.Post(qpring.CQEntry{WQIndex: wqIdx, Status: status}) {
		// CQ is sized to the WQ, so this indicates a harness bug;
		// surface it loudly rather than dropping a completion.
		panic("emu: completion queue overflow")
	}
	select {
	case qp.CQDoorbell <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------------
// RRPP pipeline

func (r *RMC) runRRPP() {
	defer r.wg.Done()
	requests := r.ic.Requests(r.id)
	for {
		select {
		case pkt := <-requests:
			r.processRequest(pkt)
		case <-r.stopped:
			return
		case <-r.ic.Done():
			return
		}
	}
}

// processRequest implements the RRPP (Fig. 3b): stateless handling of one
// line transaction using only the packet header and local CT state, always
// answering with exactly one reply.
func (r *RMC) processRequest(pkt *proto.Packet) {
	r.Stats.RequestsRecv.Add(1)
	reply := r.handle(pkt)
	// Reply injection may block on credits; the reply lane always drains
	// because RCPs consume unconditionally.
	if err := r.ic.Send(reply); err != nil {
		return // requester unreachable; its RMC flushes via ITT
	}
}

func (r *RMC) handle(pkt *proto.Packet) *proto.Packet {
	cs := r.Context(pkt.Ctx)
	if cs == nil {
		return pkt.Reply(core.StatusNoContext)
	}
	n := uint64(pkt.Aux)
	if pkt.Op.IsWrite() {
		n = uint64(len(pkt.Payload))
	}
	if pkt.Op.IsAtomic() {
		n = 8
	}
	if n == 0 || n > core.CacheLineSize || !cs.AS.InBounds(pkt.Offset, n) {
		return pkt.Reply(core.StatusBoundsError)
	}
	// Translate through the RMC TLB and the context's page table; with
	// linear mappings this cannot fail in bounds, but the walk is the
	// real control path (and the miss counter feeds the ablations).
	if _, walks, ok := cs.AS.Translate(r.tlb, pkt.Offset); !ok {
		return pkt.Reply(core.StatusBoundsError)
	} else if walks > 0 {
		r.Stats.TLBMisses.Add(1)
	}

	switch pkt.Op {
	case core.OpRead:
		payload := make([]byte, n)
		if err := cs.Seg.ReadAt(int(pkt.Offset), payload); err != nil {
			return pkt.Reply(core.StatusBoundsError)
		}
		rp := pkt.Reply(core.StatusOK)
		rp.Payload = payload
		return rp
	case core.OpWrite, core.OpWriteNotify:
		if err := cs.Seg.WriteAt(int(pkt.Offset), pkt.Payload); err != nil {
			return pkt.Reply(core.StatusBoundsError)
		}
		// The remote-interrupt extension (§8): the final line of a
		// write-with-notify raises the context's handler. Statelessly
		// tied to FlagLast — the request needs no destination-side
		// tracking.
		if pkt.Op == core.OpWriteNotify && pkt.IsLast() {
			if fn := cs.notify.Load(); fn != nil {
				(*fn)(pkt.Src, pkt.Offset-uint64(pkt.LineIdx)*core.CacheLineSize, int(pkt.Aux)+int(pkt.LineIdx)*core.CacheLineSize)
			}
		}
		return pkt.Reply(core.StatusOK)
	case core.OpFetchAdd:
		if len(pkt.Payload) < 8 {
			return pkt.Reply(core.StatusBoundsError)
		}
		delta := binary.LittleEndian.Uint64(pkt.Payload)
		old, err := cs.Seg.FetchAdd64(int(pkt.Offset), delta)
		if err != nil {
			return pkt.Reply(core.StatusBadAlign)
		}
		rp := pkt.Reply(core.StatusOK)
		rp.Payload = make([]byte, 8)
		binary.LittleEndian.PutUint64(rp.Payload, old)
		return rp
	case core.OpCompareSwap:
		if len(pkt.Payload) < 16 {
			return pkt.Reply(core.StatusBoundsError)
		}
		expected := binary.LittleEndian.Uint64(pkt.Payload)
		newv := binary.LittleEndian.Uint64(pkt.Payload[8:])
		old, err := cs.Seg.CompareSwap64(int(pkt.Offset), expected, newv)
		if err != nil {
			return pkt.Reply(core.StatusBadAlign)
		}
		rp := pkt.Reply(core.StatusOK)
		rp.Payload = make([]byte, 8)
		binary.LittleEndian.PutUint64(rp.Payload, old)
		return rp
	default:
		return pkt.Reply(core.StatusBoundsError)
	}
}

// TLBHitRate exposes the RRPP translation hit rate.
func (r *RMC) TLBHitRate() float64 { return r.tlb.HitRate() }
