//go:build !race

package emu

// raceEnabled reports whether the Go race detector is compiled in; see
// race_enabled.go.
const raceEnabled = false
