//go:build race

package emu

// raceEnabled reports whether the Go race detector is compiled in. The
// segment seqlock's optimistic reads are validated-after-the-fact and thus
// intentionally race with writers (exactly like hardware cache-coherent
// polling); under the race detector, reads take the line lock instead so
// every access is properly synchronized and the rest of the system can be
// verified race-clean.
const raceEnabled = true
