package emu

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"sonuma/internal/core"
	"sonuma/internal/fabric"
	"sonuma/internal/qpring"
)

func TestSegmentReadWrite(t *testing.T) {
	s := NewSegment(1000) // rounds to 1024
	if s.Size() != 1024 {
		t.Fatalf("size = %d", s.Size())
	}
	data := []byte("crossing a line boundary here, definitely more than sixty-four bytes of text")
	if err := s.WriteAt(60, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadAt(60, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestSegmentBounds(t *testing.T) {
	s := NewSegment(128)
	if err := s.WriteAt(120, make([]byte, 16)); err == nil {
		t.Fatal("overflowing write accepted")
	}
	//lint:ignore regionbounds deliberately negative: this test proves the segment rejects it
	if err := s.ReadAt(-1, make([]byte, 4)); err == nil {
		t.Fatal("negative offset accepted")
	}
	//lint:ignore atomicmix deliberately unaligned: this test proves the segment rejects it
	if _, err := s.FetchAdd64(121, 1); err == nil {
		t.Fatal("unaligned atomic accepted")
	}
	//lint:ignore atomicmix deliberately 4-byte-aligned: this test proves 8-byte alignment is required
	if _, err := s.FetchAdd64(124, 1); err == nil {
		t.Fatal("4-byte-aligned atomic accepted (needs 8)")
	}
}

func TestSegmentAtomics(t *testing.T) {
	s := NewSegment(64)
	if err := s.Store64(8, 10); err != nil {
		t.Fatal(err)
	}
	old, err := s.FetchAdd64(8, 5)
	if err != nil || old != 10 {
		t.Fatalf("FetchAdd: %d %v", old, err)
	}
	old, err = s.CompareSwap64(8, 15, 100)
	if err != nil || old != 15 {
		t.Fatalf("CAS success: %d %v", old, err)
	}
	old, err = s.CompareSwap64(8, 15, 200) // expected stale
	if err != nil || old != 100 {
		t.Fatalf("CAS failure path: %d %v", old, err)
	}
	v, _ := s.Load64(8)
	if v != 100 {
		t.Fatalf("final value %d", v)
	}
}

func TestSegmentLineVersionAdvances(t *testing.T) {
	s := NewSegment(256)
	v0 := s.LineVersion(1)
	if err := s.WriteAt(64, []byte("x")); err != nil {
		t.Fatal(err)
	}
	v1 := s.LineVersion(1)
	if v1 == v0 || v1&1 != 0 {
		t.Fatalf("version %d -> %d", v0, v1)
	}
	if s.LineVersion(0) != 0 {
		t.Fatal("untouched line version changed")
	}
}

// TestSegmentTornFreedom hammers one line from many writers while readers
// validate: a stable read must always be one writer's complete image
// (cache-line-granularity atomicity, §4.1).
func TestSegmentTornFreedom(t *testing.T) {
	s := NewSegment(64)
	const writers = 4
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			line := bytes.Repeat([]byte{byte('A' + w)}, 64)
			for i := 0; i < per; i++ {
				if err := s.WriteAt(0, line); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	go func() { wg.Wait(); close(stop) }()
	buf := make([]byte, 64)
	for {
		select {
		case <-stop:
			return
		default:
		}
		if err := s.ReadAt(0, buf); err != nil {
			t.Fatal(err)
		}
		first := buf[0]
		if first == 0 {
			continue // initial zero image
		}
		for _, b := range buf[1:] {
			if b != first {
				t.Fatalf("torn line observed: %q...", buf[:8])
			}
		}
	}
}

// Property: WriteAt/ReadAt behave exactly like a plain byte array under
// sequential use.
func TestPropertySegmentIsAnArray(t *testing.T) {
	f := func(writes []struct {
		Off  uint16
		Data []byte
	}) bool {
		s := NewSegment(4096)
		shadow := make([]byte, s.Size())
		for _, w := range writes {
			off := int(w.Off) % s.Size()
			n := len(w.Data)
			if off+n > s.Size() {
				n = s.Size() - off
			}
			if err := s.WriteAt(off, w.Data[:n]); err != nil {
				return false
			}
			copy(shadow[off:], w.Data[:n])
		}
		got := make([]byte, s.Size())
		if err := s.ReadAt(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// newRMCPair wires two RMCs over a crossbar for protocol-level tests below
// the public API.
func newRMCPair(t *testing.T) (*RMC, *RMC, *fabric.Interconnect) {
	t.Helper()
	ic := fabric.NewInterconnect(fabric.NewCrossbar(2), 0)
	r0 := NewRMC(0, ic, Config{})
	r1 := NewRMC(1, ic, Config{})
	t.Cleanup(func() {
		ic.Close()
		r0.Close()
		r1.Close()
	})
	return r0, r1, ic
}

// wqRead builds a read work-queue entry.
func wqRead(node core.NodeID, offset uint64, n int, buf uint32) qpring.WQEntry {
	return qpring.WQEntry{Op: core.OpRead, Node: node, Offset: offset, Length: uint32(n), Buf: buf}
}

func TestRMCLoopbackRead(t *testing.T) {
	r0, _, _ := newRMCPair(t)
	cs, err := r0.OpenContext(5, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Seg.WriteAt(256, []byte("loopback")); err != nil {
		t.Fatal(err)
	}
	qp, err := r0.CreateQP(cs, 8)
	if err != nil {
		t.Fatal(err)
	}
	bufID, buf, err := cs.RegisterBuffer(4096)
	if err != nil {
		t.Fatal(err)
	}
	// Read from self through the full protocol path (loopback via the
	// fabric, processed by our own RRPP).
	post(t, qp, 0, 256, 8, bufID)
	waitCQ(t, qp)
	got := make([]byte, 8)
	_ = buf.ReadAt(0, got)
	if string(got) != "loopback" {
		t.Fatalf("loopback read %q", got)
	}
}

func post(t *testing.T, qp *QPState, node core.NodeID, offset uint64, n int, buf uint32) {
	t.Helper()
	_, ok := qp.WQ.Post(wqRead(node, offset, n, buf))
	if !ok {
		t.Fatal("WQ full")
	}
	qp.Doorbell()
}

func waitCQ(t *testing.T, qp *QPState) core.Status {
	t.Helper()
	for i := 0; i < 1e8; i++ {
		if e, ok := qp.CQ.Poll(); ok {
			return e.Status
		}
	}
	t.Fatal("completion never arrived")
	return 0
}

func TestRMCDuplicateContextRejected(t *testing.T) {
	r0, _, _ := newRMCPair(t)
	if _, err := r0.OpenContext(1, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.OpenContext(1, 4096); err == nil {
		t.Fatal("duplicate ctx id accepted")
	}
}

func TestRMCStaleRepliesDropped(t *testing.T) {
	// After a node failure flushes in-flight state, late replies must be
	// discarded by the generation check rather than corrupting a reused
	// ITT entry. We simulate by failing the destination mid-flight.
	r0, _, ic := newRMCPair(t)
	cs, err := r0.OpenContext(2, 8192)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := r0.CreateQP(cs, 8)
	if err != nil {
		t.Fatal(err)
	}
	bufID, _, err := cs.RegisterBuffer(8192)
	if err != nil {
		t.Fatal(err)
	}
	ic.FailNode(1)
	post(t, qp, 1, 0, 4096, bufID)
	if st := waitCQ(t, qp); st != core.StatusNodeFailure {
		t.Fatalf("status %v, want node failure", st)
	}
	// RMC remains healthy for loopback traffic afterwards.
	post(t, qp, 0, 0, 64, bufID)
	if st := waitCQ(t, qp); st != core.StatusOK {
		t.Fatalf("post-failure op status %v", st)
	}
}
