// Package mmu provides the address-translation machinery the RMC depends on
// (§4.3): per-context page tables walked by a hardware page walker, and a
// TLB tagged with address-space identifiers. Unlike a traditional RDMA NIC,
// the RMC shares the operating system's page tables through the coherence
// hierarchy (§5.1), so both the functional emulation platform and the
// cycle-level model use this same structure — the emulator for bounds and
// permission checks, the timing model additionally for walk-latency
// accounting.
package mmu

import "fmt"

// DefaultPageSize matches Table 1 (8 KB pages).
const DefaultPageSize = 8192

// Levels in the radix page table. Three levels of 512-entry tables cover a
// 39-bit region space with 8 KB pages, mirroring a conventional radix walk
// (each level is one memory access for the hardware walker).
const Levels = 3

const fanout = 512

// Frame is a translated physical frame number. In the emulation platform
// frames index pages of a context segment; the value is opaque to callers.
type Frame uint64

// NoFrame is returned for unmapped pages.
const NoFrame Frame = ^Frame(0)

// PageTable is a radix page table for one context's address space.
type PageTable struct {
	pageSize uint64
	root     *node
	mapped   uint64 // number of mapped pages
}

type node struct {
	children [fanout]*node // interior
	frames   [fanout]Frame // leaf
	leaf     bool
}

func newNode(leaf bool) *node {
	n := &node{leaf: leaf}
	if leaf {
		for i := range n.frames {
			n.frames[i] = NoFrame
		}
	}
	return n
}

// NewPageTable creates a page table with the given page size (0 selects
// DefaultPageSize). Page size must be a power of two of at least 512 bytes.
func NewPageTable(pageSize int) (*PageTable, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 512 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("mmu: invalid page size %d", pageSize)
	}
	return &PageTable{pageSize: uint64(pageSize), root: newNode(false)}, nil
}

// PageSize reports the page size in bytes.
func (pt *PageTable) PageSize() int { return int(pt.pageSize) }

// Mapped reports the number of mapped pages.
func (pt *PageTable) Mapped() int { return int(pt.mapped) }

func (pt *PageTable) indexes(vpage uint64) (i0, i1, i2 uint64) {
	return (vpage >> 18) % fanout, (vpage >> 9) % fanout, vpage % fanout
}

// Map establishes vpage → frame. Mapping an already-mapped page replaces
// the translation (the driver uses this when re-pinning).
func (pt *PageTable) Map(vpage uint64, frame Frame) {
	i0, i1, i2 := pt.indexes(vpage)
	l1 := pt.root.children[i0]
	if l1 == nil {
		l1 = newNode(false)
		pt.root.children[i0] = l1
	}
	l2 := l1.children[i1]
	if l2 == nil {
		l2 = newNode(true)
		l1.children[i1] = l2
	}
	if l2.frames[i2] == NoFrame {
		pt.mapped++
	}
	l2.frames[i2] = frame
}

// Unmap removes the translation for vpage.
func (pt *PageTable) Unmap(vpage uint64) {
	i0, i1, i2 := pt.indexes(vpage)
	l1 := pt.root.children[i0]
	if l1 == nil {
		return
	}
	l2 := l1.children[i1]
	if l2 == nil {
		return
	}
	if l2.frames[i2] != NoFrame {
		pt.mapped--
		l2.frames[i2] = NoFrame
	}
}

// Walk resolves vpage, returning the frame, the number of page-table levels
// touched (= memory accesses the hardware walker performs), and whether the
// page is mapped.
func (pt *PageTable) Walk(vpage uint64) (Frame, int, bool) {
	i0, i1, i2 := pt.indexes(vpage)
	l1 := pt.root.children[i0]
	if l1 == nil {
		return NoFrame, 1, false
	}
	l2 := l1.children[i1]
	if l2 == nil {
		return NoFrame, 2, false
	}
	f := l2.frames[i2]
	if f == NoFrame {
		return NoFrame, 3, false
	}
	return f, 3, true
}

// MapLinear maps pages [0, n) to identity frames, the common case for a
// freshly registered context segment whose backing store is contiguous.
func (pt *PageTable) MapLinear(n int) {
	for i := 0; i < n; i++ {
		pt.Map(uint64(i), Frame(i))
	}
}

// ASID tags TLB entries with the owning context (§4.3: "TLB entries are
// tagged with address space identifiers corresponding to the application
// context").
type ASID uint16

// TLB is a set-associative translation lookaside buffer with LRU
// replacement within each set.
type TLB struct {
	sets    int
	ways    int
	entries [][]tlbEntry
	// Hits and Misses count lookups for the ablation studies.
	Hits   uint64
	Misses uint64
	tick   uint64
}

type tlbEntry struct {
	valid bool
	asid  ASID
	vpage uint64
	frame Frame
	used  uint64
}

// NewTLB builds a TLB with the given total entries and associativity.
// entries must be a multiple of ways.
func NewTLB(entries, ways int) *TLB {
	if ways <= 0 {
		ways = entries
	}
	if entries%ways != 0 {
		panic(fmt.Sprintf("mmu: TLB entries %d not a multiple of ways %d", entries, ways))
	}
	sets := entries / ways
	t := &TLB{sets: sets, ways: ways, entries: make([][]tlbEntry, sets)}
	for i := range t.entries {
		t.entries[i] = make([]tlbEntry, ways)
	}
	return t
}

func (t *TLB) set(vpage uint64) int { return int(vpage) % t.sets }

// Lookup returns the cached translation for (asid, vpage).
func (t *TLB) Lookup(asid ASID, vpage uint64) (Frame, bool) {
	t.tick++
	set := t.entries[t.set(vpage)]
	for i := range set {
		e := &set[i]
		if e.valid && e.asid == asid && e.vpage == vpage {
			e.used = t.tick
			t.Hits++
			return e.frame, true
		}
	}
	t.Misses++
	return NoFrame, false
}

// Insert caches a translation, updating an existing entry for the same
// (asid, vpage) or evicting the LRU way of the set.
func (t *TLB) Insert(asid ASID, vpage uint64, frame Frame) {
	t.tick++
	set := t.entries[t.set(vpage)]
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.asid == asid && e.vpage == vpage {
			victim = i
			break
		}
		if !set[victim].valid {
			continue
		}
		if !e.valid || e.used < set[victim].used {
			victim = i
		}
	}
	set[victim] = tlbEntry{valid: true, asid: asid, vpage: vpage, frame: frame, used: t.tick}
}

// InvalidateASID drops all entries of one context (driver teardown path).
func (t *TLB) InvalidateASID(asid ASID) {
	for s := range t.entries {
		for i := range t.entries[s] {
			if t.entries[s][i].asid == asid {
				t.entries[s][i].valid = false
			}
		}
	}
}

// HitRate reports hits/(hits+misses), 0 when no lookups occurred.
func (t *TLB) HitRate() float64 {
	n := t.Hits + t.Misses
	if n == 0 {
		return 0
	}
	return float64(t.Hits) / float64(n)
}

// AddressSpace couples a page table with bounds information for one context
// segment and provides the (ctx, offset) → frame translation the RRPP
// performs (§4.2): compute the virtual address from the context segment
// base plus offset, translate, and bounds-check against the registered
// segment.
type AddressSpace struct {
	pt   *PageTable
	size uint64 // registered segment size in bytes
	asid ASID
}

// NewAddressSpace registers a segment of size bytes with the given page
// size, maps it linearly, and returns the address space.
func NewAddressSpace(asid ASID, size, pageSize int) (*AddressSpace, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mmu: invalid segment size %d", size)
	}
	pt, err := NewPageTable(pageSize)
	if err != nil {
		return nil, err
	}
	pages := (size + pt.PageSize() - 1) / pt.PageSize()
	pt.MapLinear(pages)
	return &AddressSpace{pt: pt, size: uint64(size), asid: asid}, nil
}

// ASID returns the address-space identifier.
func (as *AddressSpace) ASID() ASID { return as.asid }

// Size returns the registered segment size in bytes.
func (as *AddressSpace) Size() uint64 { return as.size }

// PageTable exposes the underlying table (the RMC walks it directly, §5.1).
func (as *AddressSpace) PageTable() *PageTable { return as.pt }

// InBounds reports whether [offset, offset+length) lies inside the segment.
func (as *AddressSpace) InBounds(offset, length uint64) bool {
	return offset < as.size && length <= as.size && offset+length <= as.size
}

// Translate resolves a segment offset through the TLB (if non-nil) and page
// table. It returns the frame, the number of page-table accesses performed
// (0 on a TLB hit), and whether the translation exists.
func (as *AddressSpace) Translate(tlb *TLB, offset uint64) (Frame, int, bool) {
	vpage := offset / uint64(as.pt.pageSize)
	if tlb != nil {
		if f, ok := tlb.Lookup(as.asid, vpage); ok {
			return f, 0, true
		}
	}
	f, walks, ok := as.pt.Walk(vpage)
	if ok && tlb != nil {
		tlb.Insert(as.asid, vpage, f)
	}
	return f, walks, ok
}
