package mmu

import (
	"testing"
	"testing/quick"
)

func TestPageTableMapWalk(t *testing.T) {
	pt, err := NewPageTable(8192)
	if err != nil {
		t.Fatal(err)
	}
	pt.Map(0, 100)
	pt.Map(511, 200)
	pt.Map(512*512+3, 300) // crosses into a second L1 subtree
	cases := []struct {
		vpage uint64
		frame Frame
		ok    bool
	}{
		{0, 100, true},
		{511, 200, true},
		{512*512 + 3, 300, true},
		{1, NoFrame, false},
		{1 << 26, NoFrame, false},
	}
	for _, c := range cases {
		f, walks, ok := pt.Walk(c.vpage)
		if ok != c.ok || (ok && f != c.frame) {
			t.Fatalf("Walk(%d) = %d,%v want %d,%v", c.vpage, f, ok, c.frame, c.ok)
		}
		if walks < 1 || walks > Levels {
			t.Fatalf("Walk(%d) touched %d levels", c.vpage, walks)
		}
	}
	if pt.Mapped() != 3 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
}

func TestPageTableUnmapAndRemap(t *testing.T) {
	pt, _ := NewPageTable(0)
	pt.Map(5, 50)
	pt.Unmap(5)
	if _, _, ok := pt.Walk(5); ok {
		t.Fatal("walk after unmap succeeded")
	}
	pt.Map(5, 51) // remap replaces
	pt.Map(5, 52)
	f, _, ok := pt.Walk(5)
	if !ok || f != 52 {
		t.Fatalf("remap: %d %v", f, ok)
	}
	if pt.Mapped() != 1 {
		t.Fatalf("mapped = %d after remap", pt.Mapped())
	}
}

func TestPageSizeValidation(t *testing.T) {
	for _, bad := range []int{-1, 100, 1000, 3 << 10} {
		if _, err := NewPageTable(bad); err == nil {
			t.Fatalf("page size %d accepted", bad)
		}
	}
	pt, err := NewPageTable(0)
	if err != nil || pt.PageSize() != DefaultPageSize {
		t.Fatalf("default page size: %v %d", err, pt.PageSize())
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(32, 4)
	if _, hit := tlb.Lookup(1, 7); hit {
		t.Fatal("hit in empty TLB")
	}
	tlb.Insert(1, 7, 70)
	if f, hit := tlb.Lookup(1, 7); !hit || f != 70 {
		t.Fatalf("lookup after insert: %d %v", f, hit)
	}
	// Same vpage, different ASID must miss (§4.3: ASID-tagged entries).
	if _, hit := tlb.Lookup(2, 7); hit {
		t.Fatal("cross-ASID hit")
	}
	if tlb.Hits != 1 || tlb.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(4, 4) // one set
	for i := uint64(0); i < 4; i++ {
		tlb.Insert(0, i*4, Frame(i)) // same set (sets=1)
	}
	tlb.Lookup(0, 0) // touch vpage 0 so it is MRU
	tlb.Insert(0, 100, 99)
	if _, hit := tlb.Lookup(0, 0); !hit {
		t.Fatal("MRU entry evicted")
	}
	if _, hit := tlb.Lookup(0, 4); hit {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestTLBInvalidateASID(t *testing.T) {
	tlb := NewTLB(8, 2)
	tlb.Insert(1, 1, 10)
	tlb.Insert(2, 2, 20)
	tlb.InvalidateASID(1)
	if _, hit := tlb.Lookup(1, 1); hit {
		t.Fatal("ASID 1 entry survived invalidation")
	}
	if _, hit := tlb.Lookup(2, 2); !hit {
		t.Fatal("ASID 2 entry lost")
	}
}

func TestAddressSpaceBounds(t *testing.T) {
	as, err := NewAddressSpace(3, 100000, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off, n uint64
		ok     bool
	}{
		{0, 1, true},
		{99999, 1, true},
		{99999, 2, false},
		{100000, 1, false},
		{0, 100000, true},
		{^uint64(0) - 10, 64, false}, // overflow attempt
	}
	for _, c := range cases {
		if got := as.InBounds(c.off, c.n); got != c.ok {
			t.Errorf("InBounds(%d,%d) = %v, want %v", c.off, c.n, got, c.ok)
		}
	}
}

func TestAddressSpaceTranslate(t *testing.T) {
	as, _ := NewAddressSpace(1, 64*8192, 8192)
	tlb := NewTLB(4, 2)
	// First access walks; second hits.
	_, walks, ok := as.Translate(tlb, 5*8192+17)
	if !ok || walks == 0 {
		t.Fatalf("first translate: walks=%d ok=%v", walks, ok)
	}
	_, walks, ok = as.Translate(tlb, 5*8192+4000)
	if !ok || walks != 0 {
		t.Fatalf("second translate should TLB-hit: walks=%d", walks)
	}
	// Translation works without a TLB too.
	if _, _, ok := as.Translate(nil, 0); !ok {
		t.Fatal("nil-TLB translate failed")
	}
}

// Property: for any set of (vpage, frame) insertions, the page table
// faithfully returns the most recent frame for mapped pages and misses on
// unmapped ones.
func TestPropertyPageTableFaithful(t *testing.T) {
	f := func(pages []uint32) bool {
		pt, _ := NewPageTable(8192)
		shadow := map[uint64]Frame{}
		for i, p := range pages {
			vp := uint64(p % 100000)
			fr := Frame(i)
			pt.Map(vp, fr)
			shadow[vp] = fr
		}
		for vp, want := range shadow {
			got, _, ok := pt.Walk(vp)
			if !ok || got != want {
				return false
			}
		}
		// A page outside the inserted set must miss.
		if _, _, ok := pt.Walk(200001); ok {
			return false
		}
		return pt.Mapped() == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the TLB never returns a frame that was not inserted for exactly
// that (asid, vpage).
func TestPropertyTLBNoAliasing(t *testing.T) {
	f := func(ins []uint16) bool {
		tlb := NewTLB(16, 4)
		shadow := map[[2]uint64]Frame{}
		for i, x := range ins {
			asid := ASID(x % 4)
			vp := uint64(x % 64)
			tlb.Insert(asid, vp, Frame(i))
			shadow[[2]uint64{uint64(asid), vp}] = Frame(i)
		}
		for k, want := range shadow {
			if f, hit := tlb.Lookup(ASID(k[0]), k[1]); hit && f != want {
				return false // stale or aliased frame
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
