package sim

// Port models a resource that serializes work items: at most one item
// occupies it at a time, and each item holds it for a fixed or per-item
// duration. It is the building block for pipeline stages, memory channels
// and link serialization in the hardware model.
type Port struct {
	eng *Engine
	// free is the earliest time the port can begin the next item.
	free Time
	// Busy accumulates total occupied time, for utilization reports.
	Busy Time
}

// NewPort returns a port bound to the engine.
func NewPort(eng *Engine) *Port { return &Port{eng: eng} }

// Acquire reserves the port for dur starting no earlier than now, returning
// the time at which the reservation begins. The caller typically schedules
// its completion at start+dur.
func (p *Port) Acquire(dur Time) (start Time) {
	start = p.eng.Now()
	if p.free > start {
		start = p.free
	}
	p.free = start + dur
	p.Busy += dur
	return start
}

// AcquireAt reserves the port for dur starting no earlier than at.
func (p *Port) AcquireAt(at, dur Time) (start Time) {
	start = at
	if now := p.eng.Now(); start < now {
		start = now
	}
	if p.free > start {
		start = p.free
	}
	p.free = start + dur
	p.Busy += dur
	return start
}

// FreeAt reports when the port next becomes free.
func (p *Port) FreeAt() Time { return p.free }

// Utilization reports Busy as a fraction of elapsed simulation time.
func (p *Port) Utilization() float64 {
	if p.eng.Now() == 0 {
		return 0
	}
	return float64(p.Busy) / float64(p.eng.Now())
}

// TokenPool models a bounded set of identical resources (MSHRs, ITT entries,
// link credits). Waiters are served FIFO when tokens return.
type TokenPool struct {
	eng     *Engine
	tokens  int
	waiters []func()
	// PeakWaiters tracks the high-water mark of queued waiters.
	PeakWaiters int
}

// NewTokenPool returns a pool holding n tokens.
func NewTokenPool(eng *Engine, n int) *TokenPool {
	return &TokenPool{eng: eng, tokens: n}
}

// TryAcquire takes a token immediately if one is available.
func (tp *TokenPool) TryAcquire() bool {
	if tp.tokens > 0 {
		tp.tokens--
		return true
	}
	return false
}

// Acquire takes a token, invoking fn immediately if one is free or queueing
// fn until Release.
func (tp *TokenPool) Acquire(fn func()) {
	if tp.tokens > 0 {
		tp.tokens--
		fn()
		return
	}
	tp.waiters = append(tp.waiters, fn)
	if len(tp.waiters) > tp.PeakWaiters {
		tp.PeakWaiters = len(tp.waiters)
	}
}

// Release returns a token, handing it to the oldest waiter if any. The
// waiter runs as a fresh event at the current time, not inline, so release
// sites do not reenter arbitrary state machines.
func (tp *TokenPool) Release() {
	if len(tp.waiters) > 0 {
		fn := tp.waiters[0]
		copy(tp.waiters, tp.waiters[1:])
		tp.waiters = tp.waiters[:len(tp.waiters)-1]
		tp.eng.After(0, fn)
		return
	}
	tp.tokens++
}

// Available reports the number of free tokens.
func (tp *TokenPool) Available() int { return tp.tokens }

// Queue is a bounded FIFO with event-driven handoff: producers append items,
// and a single consumer drains them via a callback armed with SetConsumer.
// It models NI queues and pipeline input latches.
type Queue struct {
	eng      *Engine
	items    []interface{}
	capacity int
	consumer func()
	armed    bool
	// Peak tracks the occupancy high-water mark.
	Peak int
}

// NewQueue returns a queue with the given capacity (<=0 means unbounded).
func NewQueue(eng *Engine, capacity int) *Queue {
	return &Queue{eng: eng, capacity: capacity}
}

// SetConsumer registers the drain callback. Whenever the queue transitions
// from empty to non-empty, the callback is scheduled once; it should consume
// with Pop until empty.
func (q *Queue) SetConsumer(fn func()) { q.consumer = fn }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.capacity > 0 && len(q.items) >= q.capacity }

// Len reports current occupancy.
func (q *Queue) Len() int { return len(q.items) }

// Push appends an item; it reports false if the queue is full.
func (q *Queue) Push(v interface{}) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, v)
	if len(q.items) > q.Peak {
		q.Peak = len(q.items)
	}
	if q.consumer != nil && !q.armed {
		q.armed = true
		q.eng.After(0, func() {
			q.armed = false
			q.consumer()
		})
	}
	return true
}

// Pop removes and returns the oldest item, or nil if empty.
func (q *Queue) Pop() interface{} {
	if len(q.items) == 0 {
		return nil
	}
	v := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return v
}

// Peek returns the oldest item without removing it, or nil if empty.
func (q *Queue) Peek() interface{} {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}
