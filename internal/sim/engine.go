// Package sim provides the deterministic discrete-event simulation engine
// underlying the cycle-level soNUMA hardware model (internal/simhw). It plays
// the role Flexus plays in the paper's methodology (§7.1): components are
// state machines that schedule future work on a shared virtual clock.
//
// Time is measured in integer picoseconds so that a 2 GHz core cycle (500 ps),
// DRAM timing parameters, and link delays all compose without rounding. Events
// scheduled for the same instant fire in scheduling order, which makes every
// simulation bit-reproducible for a given seed and parameter set.
package sim

import "container/heap"

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports the time as a float64 number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports the time as a float64 number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports the time as float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-instant events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// Executed counts events dispatched since construction; useful for
	// detecting livelock in tests.
	Executed uint64
}

// New returns a fresh engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) fires the event at the current time instead, preserving causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Stop halts Run before the next event dispatch.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events not yet dispatched.
func (e *Engine) Pending() int { return len(e.queue) }

// Run dispatches events in timestamp order until the queue drains or Stop is
// called. It returns the final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	return e.now
}

// RunUntil dispatches events with timestamps <= deadline (or until Stop /
// queue drain) and returns the final simulation time. Events beyond the
// deadline remain queued.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			e.now = deadline
			return e.now
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	if e.now < deadline && e.stopped {
		return e.now
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
