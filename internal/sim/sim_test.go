package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	eng := New()
	var order []int
	eng.After(30*Nanosecond, func() { order = append(order, 3) })
	eng.After(10*Nanosecond, func() { order = append(order, 1) })
	eng.After(20*Nanosecond, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v", order)
	}
	if eng.Now() != 30*Nanosecond {
		t.Fatalf("final time %v, want 30ns", eng.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	eng := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5*Nanosecond, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	eng := New()
	fired := Time(-1)
	eng.After(10*Nanosecond, func() {
		eng.At(0, func() { fired = eng.Now() }) // in the past
	})
	eng.Run()
	if fired != 10*Nanosecond {
		t.Fatalf("past event fired at %v, want clamped to 10ns", fired)
	}
}

func TestRunUntil(t *testing.T) {
	eng := New()
	count := 0
	for i := 1; i <= 10; i++ {
		eng.At(Time(i)*Microsecond, func() { count++ })
	}
	eng.RunUntil(5 * Microsecond)
	if count != 5 {
		t.Fatalf("RunUntil executed %d events, want 5", count)
	}
	if eng.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", eng.Pending())
	}
	eng.Run()
	if count != 10 {
		t.Fatalf("drain executed %d total, want 10", count)
	}
}

func TestStop(t *testing.T) {
	eng := New()
	count := 0
	for i := 1; i <= 10; i++ {
		eng.At(Time(i), func() {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	eng.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt dispatch: %d events ran", count)
	}
}

func TestCascadedScheduling(t *testing.T) {
	eng := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			eng.After(Nanosecond, recurse)
		}
	}
	eng.After(0, recurse)
	eng.Run()
	if depth != 100 {
		t.Fatalf("cascade depth %d, want 100", depth)
	}
	if eng.Now() != 99*Nanosecond {
		t.Fatalf("final time %v, want 99ns", eng.Now())
	}
}

func TestPortSerializes(t *testing.T) {
	eng := New()
	p := NewPort(eng)
	s1 := p.Acquire(10 * Nanosecond)
	s2 := p.Acquire(10 * Nanosecond)
	s3 := p.Acquire(5 * Nanosecond)
	if s1 != 0 || s2 != 10*Nanosecond || s3 != 20*Nanosecond {
		t.Fatalf("port starts %v %v %v", s1, s2, s3)
	}
	if p.Busy != 25*Nanosecond {
		t.Fatalf("busy = %v, want 25ns", p.Busy)
	}
}

func TestPortAcquireAt(t *testing.T) {
	eng := New()
	p := NewPort(eng)
	if s := p.AcquireAt(100*Nanosecond, 10*Nanosecond); s != 100*Nanosecond {
		t.Fatalf("first AcquireAt start %v", s)
	}
	// Earlier request serializes after the reservation.
	if s := p.AcquireAt(50*Nanosecond, 10*Nanosecond); s != 110*Nanosecond {
		t.Fatalf("second AcquireAt start %v, want 110ns", s)
	}
}

func TestTokenPool(t *testing.T) {
	eng := New()
	tp := NewTokenPool(eng, 2)
	got := []int{}
	for i := 0; i < 4; i++ {
		i := i
		tp.Acquire(func() { got = append(got, i) })
	}
	if len(got) != 2 {
		t.Fatalf("acquired %d immediately, want 2", len(got))
	}
	tp.Release()
	tp.Release()
	eng.Run() // waiters run as events
	if len(got) != 4 {
		t.Fatalf("after release, %d ran, want 4 (got %v)", len(got), got)
	}
	// FIFO order among waiters.
	if got[2] != 2 || got[3] != 3 {
		t.Fatalf("waiter order %v", got)
	}
}

func TestQueueConsumerHandoff(t *testing.T) {
	eng := New()
	q := NewQueue(eng, 4)
	var drained []int
	q.SetConsumer(func() {
		for q.Len() > 0 {
			drained = append(drained, q.Pop().(int))
		}
	})
	q.Push(1)
	q.Push(2)
	eng.Run()
	if len(drained) != 2 {
		t.Fatalf("drained %v", drained)
	}
	if !q.Push(3) {
		t.Fatal("push after drain failed")
	}
	eng.Run()
	if len(drained) != 3 || drained[2] != 3 {
		t.Fatalf("drained %v", drained)
	}
}

func TestQueueCapacity(t *testing.T) {
	eng := New()
	q := NewQueue(eng, 2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push(3) {
		t.Fatal("push beyond capacity succeeded")
	}
	if !q.Full() {
		t.Fatal("queue not full at capacity")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine executes all of them.
func TestPropertyEventTimeMonotonic(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		eng := New()
		var times []Time
		for _, d := range delays {
			eng.After(Time(d)*Nanosecond, func() { times = append(times, eng.Now()) })
		}
		eng.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a port never double-books — consecutive reservations are
// disjoint and ordered.
func TestPropertyPortNoOverlap(t *testing.T) {
	f := func(durs []uint8) bool {
		eng := New()
		p := NewPort(eng)
		var lastEnd Time
		for _, d := range durs {
			dur := Time(d%50+1) * Nanosecond
			start := p.Acquire(dur)
			if start < lastEnd {
				return false
			}
			lastEnd = start + dur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if (1500 * Picosecond).Nanoseconds() != 1.5 {
		t.Fatal("ps→ns conversion")
	}
	if (2500 * Nanosecond).Microseconds() != 2.5 {
		t.Fatal("ns→us conversion")
	}
	if (Second).Seconds() != 1.0 {
		t.Fatal("s conversion")
	}
}
