// Package stats provides the measurement and reporting helpers shared by the
// experiment harness: deterministic RNG, latency histograms with percentile
// extraction, and plain-text table/series formatting matched to the tables
// and figures of the paper.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// RNG is a small deterministic pseudo-random generator (splitmix64). The
// harness uses it instead of math/rand so that workloads are reproducible
// across Go versions and machines.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed + 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
//
// The reduction is Lemire's multiply-shift with rejection (Lemire,
// "Fast Random Integer Generation in an Interval", 2019) rather than a
// plain modulo: `Uint64() % n` over-weights the low residues whenever n
// does not divide 2^64, which would skew YCSB key draws. The fast path is
// one 128-bit multiply; the rare rejection loop (probability < n/2^64)
// discards exactly the draws that would land in the biased remainder.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un // (2^64 - n) % n: size of the unbiased suffix
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Zipf draws values in [0, n) with probability proportional to
// 1/(rank+1)^s, via inverse-CDF over a precomputed table.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// ZipfTopMass returns the expected probability mass of the k most
// popular ranks of a Zipf(s) distribution over n items — the reference
// value distribution tests compare observed frequencies against.
func ZipfTopMass(n int, s float64, k int) float64 {
	if k > n {
		k = n
	}
	top, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		p := 1.0 / math.Pow(float64(i+1), s)
		sum += p
		if i < k {
			top += p
		}
	}
	return top / sum
}

// Sample accumulates observations for summary statistics.
type Sample struct {
	vals   []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Min reports the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	return s.vals[0]
}

// Max reports the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	return s.vals[len(s.vals)-1]
}

// Percentile reports the p-th percentile (0 <= p <= 100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	rank := int(math.Ceil(p/100*float64(len(s.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.vals) {
		rank = len(s.vals) - 1
	}
	return s.vals[rank]
}

// Stddev reports the population standard deviation.
func (s *Sample) Stddev() float64 {
	if len(s.vals) < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s.vals)))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Table is a simple fixed-column text table used by the harness to print
// paper-style tables and figure series.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatFloat renders a float with precision adapted to its magnitude, so
// latency tables read naturally (e.g. "0.30", "12.8", "304").
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av == 0:
		return "0"
	case av < 10:
		return fmt.Sprintf("%.2f", v)
	case av < 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// FormatBytes renders a byte count as a compact human unit (64B, 4KB, 1MB).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Gbps converts bytes transferred over a duration in seconds to gigabits/s.
func Gbps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) * 8 / seconds / 1e9
}

// GBps converts bytes over seconds to gigabytes/s.
func GBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / seconds / 1e9
}
