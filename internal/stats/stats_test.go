package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	// Huge ranges (where modulo bias would be worst) stay in bounds and
	// reach the upper half of the interval.
	huge := (1 << 62) + 12345
	sawHigh := false
	for i := 0; i < 10000; i++ {
		v := r.Intn(huge)
		if v < 0 || v >= huge {
			t.Fatalf("Intn(%d) = %d", huge, v)
		}
		if v > huge/2 {
			sawHigh = true
		}
	}
	if !sawHigh {
		t.Fatalf("Intn(%d) never reached the upper half in 10000 draws", huge)
	}
	if r.Intn(1) != 0 {
		t.Fatal("Intn(1) must be 0")
	}
}

// TestIntnUniform is the distribution test guarding the YCSB key draws: a
// chi-square goodness-of-fit check over a bucket count that does not
// divide the generator's 2^64 range, so any reduction bias (the old
// `Uint64 % n`) or a broken rejection loop shows up as skew.
func TestIntnUniform(t *testing.T) {
	const n = 1000
	const draws = 1_000_000
	r := NewRNG(0xD15C0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 999 degrees of freedom: mean 999, stddev ~44.7. Accept ±5 sigma
	// (~[775, 1223]); a uniformity bug shifts chi-square by orders of
	// magnitude, not fractions of a sigma.
	if chi2 < 775 || chi2 > 1223 {
		t.Fatalf("chi-square = %.1f over %d buckets (expect ~999±224); Intn is not uniform", chi2, n)
	}
	// And no bucket may be starved or doubled outright.
	for i, c := range counts {
		if float64(c) < expected*0.7 || float64(c) > expected*1.3 {
			t.Fatalf("bucket %d drawn %d times (expected ~%.0f)", i, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(1)
	z := NewZipf(r, 1000, 1.2)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate, and the head must hold most of the mass.
	if counts[0] < counts[10] {
		t.Fatalf("rank 0 (%d) not above rank 10 (%d)", counts[0], counts[10])
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/draws < 0.5 {
		t.Fatalf("top-10%% of ranks hold only %.2f of mass", float64(head)/draws)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("basic stats wrong: n=%d mean=%g min=%g max=%g", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if p := s.Percentile(50); p != 3 {
		t.Fatalf("p50 = %g, want 3", p)
	}
	if p := s.Percentile(100); p != 5 {
		t.Fatalf("p100 = %g, want 5", p)
	}
	if sd := s.Stddev(); math.Abs(sd-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %g", sd)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(99) != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample not all-zero")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(vals []float64, p1, p2 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1.0)
	tab.AddRow("beta", 123.456)
	out := tab.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "123") {
		t.Fatalf("table rendering missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[int]string{64: "64B", 1024: "1KB", 8192: "8KB", 1 << 20: "1MB", 100: "100B"}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
	if FormatFloat(0.305) != "0.30" && FormatFloat(0.305) != "0.31" {
		t.Errorf("FormatFloat small = %q", FormatFloat(0.305))
	}
	if FormatFloat(304.7) != "305" {
		t.Errorf("FormatFloat large = %q", FormatFloat(304.7))
	}
}

func TestBandwidthHelpers(t *testing.T) {
	if g := Gbps(1e9, 1); math.Abs(g-8) > 1e-9 {
		t.Fatalf("Gbps = %g", g)
	}
	if g := GBps(5e9, 2); math.Abs(g-2.5) > 1e-9 {
		t.Fatalf("GBps = %g", g)
	}
	if Gbps(100, 0) != 0 || GBps(100, -1) != 0 {
		t.Fatal("zero/negative duration not guarded")
	}
}
