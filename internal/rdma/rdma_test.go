package rdma

import "testing"

func TestReadRTTMatchesPublished(t *testing.T) {
	p := ConnectX3()
	rtt := p.ReadRTT(64).Microseconds()
	// Table 2 cites 1.19µs for the ConnectX-3 testbed [14].
	if rtt < 1.0 || rtt > 1.4 {
		t.Fatalf("read RTT %.2fµs, want ≈1.19µs", rtt)
	}
}

func TestAtomicNearReadLatency(t *testing.T) {
	p := ConnectX3()
	read := p.ReadRTT(8)
	atomic := p.AtomicRTT()
	// §7.4: "the latency of fetch-and-add is approximately the same as
	// that of the remote read operations".
	ratio := float64(atomic) / float64(read)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("atomic/read ratio %.2f", ratio)
	}
}

func TestPCIeCapsBandwidth(t *testing.T) {
	p := ConnectX3()
	// §7.4: PCIe Gen3 limits RDMA to 50 Gbps despite 56 Gbps InfiniBand.
	if bw := p.MaxBandwidthGbps(); bw != 50 {
		t.Fatalf("max bandwidth %.0f, want PCIe-limited 50", bw)
	}
	fat := p
	fat.PCIeGbps = 100
	if bw := fat.MaxBandwidthGbps(); bw != 56 {
		t.Fatalf("with fat PCIe, link should cap at 56, got %.0f", bw)
	}
}

func TestIOPSScalesWithQPs(t *testing.T) {
	p := ConnectX3()
	if p.IOPS(4) != 4*p.IOPS(1) {
		t.Fatal("IOPS not linear in QPs")
	}
	// Table 2: 35M IOPS at 4 QPs / 4 cores.
	if v := p.IOPS(4) / 1e6; v < 30 || v > 40 {
		t.Fatalf("IOPS@4 = %.1fM, want ≈35M", v)
	}
}

func TestRTTGrowsWithPayload(t *testing.T) {
	p := ConnectX3()
	if p.ReadRTT(4096) <= p.ReadRTT(64) {
		t.Fatal("RTT does not grow with payload")
	}
}
