// Package rdma models the state-of-the-art RDMA baseline of Table 2: a
// Mellanox ConnectX-3 host channel adapter on PCIe Gen3, two servers
// back-to-back over 56 Gb/s InfiniBand [14]. The model decomposes the
// paper's measured 1.19 µs remote read into the component overheads the
// paper attributes (§2.2): PCIe round trips for doorbell and DMA, adapter
// processing, and the wire — exposing exactly what the RMC's coherent
// integration eliminates.
package rdma

import "sonuma/internal/sim"

// Params are the component latencies and limits of the RDMA path.
type Params struct {
	// DoorbellWrite is the CPU's uncached MMIO write crossing PCIe to
	// ring the adapter.
	DoorbellWrite sim.Time
	// DescriptorFetch is the adapter's DMA of the work queue element
	// back across PCIe (§2.2: "400-500ns to communicate short bursts
	// over the PCIe bus").
	DescriptorFetch sim.Time
	// HCAProcessing is adapter firmware/pipeline time per operation,
	// paid on both the requesting and responding adapters.
	HCAProcessing sim.Time
	// Wire is the one-way InfiniBand propagation + serialization delay
	// for small messages (back-to-back servers).
	Wire sim.Time
	// RemoteMemory is the responder-side DMA read from host DRAM across
	// PCIe.
	RemoteMemory sim.Time
	// DeliveryDMA is the requester-side DMA of the payload + CQE into
	// host memory, plus the CPU's poll observing it.
	DeliveryDMA sim.Time
	// PCIeGbps caps throughput (PCIe Gen3 x8 effective ≈ 50 Gb/s).
	PCIeGbps float64
	// LinkGbps is the InfiniBand signalling rate (56 Gb/s FDR).
	LinkGbps float64
	// IOPSPerQP is the per-queue-pair small-operation rate; the
	// Mellanox figure of 35 M IOPS uses 4 QPs on 4 cores [14].
	IOPSPerQP float64
	// AtomicExtra is the additional adapter time for fetch-and-add
	// (the HCA serializes atomics internally).
	AtomicExtra sim.Time
}

// ConnectX3 returns the Table 2 baseline calibrated to the published
// numbers: 1.19 µs read RTT, 1.15 µs fetch-and-add, 50 Gb/s, 35 M IOPS at
// 4 QPs/4 cores.
func ConnectX3() Params {
	return Params{
		DoorbellWrite:   150 * sim.Nanosecond,
		DescriptorFetch: 250 * sim.Nanosecond,
		HCAProcessing:   80 * sim.Nanosecond,
		Wire:            130 * sim.Nanosecond,
		RemoteMemory:    140 * sim.Nanosecond,
		DeliveryDMA:     150 * sim.Nanosecond,
		PCIeGbps:        50,
		LinkGbps:        56,
		IOPSPerQP:       8.75e6,
		AtomicExtra:     30 * sim.Nanosecond,
	}
}

// ReadRTT reports the end-to-end latency of a small one-sided read.
func (p Params) ReadRTT(bytes int) sim.Time {
	ser := sim.Time(float64(bytes)*8/p.LinkGbps) * sim.Nanosecond / 8
	return p.DoorbellWrite + p.DescriptorFetch + p.HCAProcessing +
		p.Wire + p.HCAProcessing + p.RemoteMemory +
		p.Wire + ser + p.HCAProcessing + p.DeliveryDMA
}

// AtomicRTT reports fetch-and-add latency; the HCA resolves atomics at the
// responder, so the path matches a read plus the atomic unit time. Unlike
// soNUMA, the operation is atomic only with respect to other adapter
// operations, not host CPU accesses (§7.4).
func (p Params) AtomicRTT() sim.Time {
	return p.ReadRTT(8) + p.AtomicExtra - p.RemoteMemory/2
}

// MaxBandwidthGbps reports large-transfer throughput: the wire rate clipped
// by the PCIe bottleneck (§7.4: "the PCIe-Gen3 bus limits RDMA bandwidth to
// 50 Gbps, even with 56 Gbps InfiniBand").
func (p Params) MaxBandwidthGbps() float64 {
	if p.PCIeGbps < p.LinkGbps {
		return p.PCIeGbps
	}
	return p.LinkGbps
}

// IOPS reports small-operation throughput for the given queue-pair count.
func (p Params) IOPS(qps int) float64 { return p.IOPSPerQP * float64(qps) }
