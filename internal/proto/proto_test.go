package proto

import (
	"bytes"
	"testing"
	"testing/quick"

	"sonuma/internal/core"
)

func samplePacket() *Packet {
	return &Packet{
		Kind: KindRequest, Op: core.OpWrite, Status: core.StatusOK,
		Flags: FlagLast, Dst: 3, Src: 1, Ctx: 7, Tid: 42,
		Offset: 0xdeadbeef00, LineIdx: 5, Aux: 64,
		Payload: bytes.Repeat([]byte{0xAB}, 64),
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.WireSize() {
		t.Fatalf("wire size %d, want %d", len(buf), p.WireSize())
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != p.Kind || q.Op != p.Op || q.Status != p.Status || q.Flags != p.Flags ||
		q.Dst != p.Dst || q.Src != p.Src || q.Ctx != p.Ctx || q.Tid != p.Tid ||
		q.Offset != p.Offset || q.LineIdx != p.LineIdx || q.Aux != p.Aux {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", q, p)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestMarshalNoPayload(t *testing.T) {
	p := &Packet{Kind: KindRequest, Op: core.OpRead, Dst: 1, Src: 0, Tid: 9, Aux: 64}
	buf, err := p.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize {
		t.Fatalf("read request wire size %d, want header only %d", len(buf), HeaderSize)
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Payload != nil {
		t.Fatal("payload not nil")
	}
}

func TestMarshalRejectsOversizedPayload(t *testing.T) {
	p := samplePacket()
	p.Payload = make([]byte, core.CacheLineSize+1)
	if _, err := p.Marshal(nil); err != ErrBadPayload {
		t.Fatalf("expected ErrBadPayload, got %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, HeaderSize-1)); err != ErrShortPacket {
		t.Fatalf("short packet: %v", err)
	}
	buf, _ := samplePacket().Marshal(nil)
	buf[0] = 99 // bad kind
	if _, err := Unmarshal(buf); err != ErrBadKind {
		t.Fatalf("bad kind: %v", err)
	}
	buf, _ = samplePacket().Marshal(nil)
	buf[12] = 0xFF // payload length lies beyond buffer
	buf[13] = 0x0F
	if _, err := Unmarshal(buf[:HeaderSize]); err != ErrShortPacket {
		t.Fatalf("lying payload length: %v", err)
	}
}

func TestReplyConstruction(t *testing.T) {
	p := samplePacket()
	r := p.Reply(core.StatusBoundsError)
	if r.Kind != KindReply {
		t.Fatal("reply kind")
	}
	if r.Dst != p.Src || r.Src != p.Dst {
		t.Fatal("reply route not swapped")
	}
	if r.Tid != p.Tid || r.Ctx != p.Ctx || r.Offset != p.Offset || r.LineIdx != p.LineIdx {
		t.Fatal("reply must echo tid/ctx/offset/line")
	}
	if r.Status != core.StatusBoundsError {
		t.Fatal("reply status")
	}
}

func TestMarshalReusesBuffer(t *testing.T) {
	p := samplePacket()
	scratch := make([]byte, 0, MaxPacketSize)
	buf, err := p.Marshal(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[0] != &scratch[:1][0] {
		t.Fatal("Marshal allocated despite sufficient capacity")
	}
}

// Property: every syntactically valid packet survives a marshal/unmarshal
// round trip bit-exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(kindReq bool, op, status, flags uint8, dst, src, ctx, tid uint16, offset uint64, lineIdx, aux uint32, payloadLen uint8, fill byte) bool {
		p := &Packet{
			Kind: KindReply, Op: core.Op(op%4 + 1), Status: core.Status(status % 5),
			Flags: flags, Dst: core.NodeID(dst), Src: core.NodeID(src),
			Ctx: core.CtxID(ctx), Tid: core.Tid(tid), Offset: offset,
			LineIdx: lineIdx, Aux: aux,
		}
		if kindReq {
			p.Kind = KindRequest
		}
		if n := int(payloadLen) % (core.CacheLineSize + 1); n > 0 {
			p.Payload = bytes.Repeat([]byte{fill}, n)
		}
		buf, err := p.Marshal(nil)
		if err != nil {
			return false
		}
		q, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return q.Kind == p.Kind && q.Op == p.Op && q.Status == p.Status &&
			q.Flags == p.Flags && q.Dst == p.Dst && q.Src == p.Src &&
			q.Ctx == p.Ctx && q.Tid == p.Tid && q.Offset == p.Offset &&
			q.LineIdx == p.LineIdx && q.Aux == p.Aux &&
			bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringer(t *testing.T) {
	s := samplePacket().String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String() = %q", s)
	}
}
