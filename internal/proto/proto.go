// Package proto defines the soNUMA wire protocol (§6): a stateless
// request/reply protocol at cache-line granularity layered over a reliable
// point-to-point memory fabric.
//
// Every packet carries a fixed-size header and an optional cache-line-sized
// payload (the MTU of the memory fabric, §6 "Link layer"). A request packet
// identifies the target memory by <ctx_id, offset>; the destination RMC
// processes it using only the header plus local configuration state and
// always answers with exactly one reply carrying the same opaque tid.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sonuma/internal/core"
)

// Kind distinguishes the two virtual-lane classes (§6: two virtual lanes for
// deadlock-free request/reply).
type Kind uint8

const (
	// KindRequest travels on the request virtual lane.
	KindRequest Kind = iota + 1
	// KindReply travels on the reply virtual lane.
	KindReply
)

// HeaderSize is the encoded size of a packet header on the wire.
//
// Layout (little endian):
//
//	offset 0  : kind    (1)
//	offset 1  : op      (1)
//	offset 2  : status  (1)
//	offset 3  : flags   (1)
//	offset 4  : dst     (2)
//	offset 6  : src     (2)
//	offset 8  : ctx     (2)
//	offset 10 : tid     (2)
//	offset 12 : payload length (2)
//	offset 14 : reserved (2)
//	offset 16 : offset  (8)   remote offset of this line transaction
//	offset 24 : aux     (8)   atomics operand / line index within request
const HeaderSize = 32

// MaxPacketSize is the MTU: header plus one cache line of payload.
const MaxPacketSize = HeaderSize + core.CacheLineSize

// Flags bits.
const (
	// FlagLast marks the final line transaction of an unrolled request.
	// It is advisory (the ITT count is authoritative) but lets the
	// destination and tracing tools delimit requests cheaply.
	FlagLast uint8 = 1 << iota
)

// Packet is one fabric message. Request packets for writes and atomics carry
// payload toward the destination; read requests carry none and their replies
// carry the line read. Aux carries the atomic operand on requests
// (FetchAdd delta, CompareSwap expected value via payload) and the line index
// within the unrolled request on both directions, so the completion pipeline
// can compute the target buffer address for out-of-order replies (§4.2 RCP).
type Packet struct {
	Kind    Kind
	Op      core.Op
	Status  core.Status
	Flags   uint8
	Dst     core.NodeID
	Src     core.NodeID
	Ctx     core.CtxID
	Tid     core.Tid
	Offset  uint64 // remote offset of this line transaction
	LineIdx uint32 // index of this line within the WQ request
	Aux     uint32 // atomics: low half of operand descriptor (see below)
	Payload []byte // nil or up to one cache line

	// buf is the inline payload storage claimed through AllocPayload, so
	// pooled packets carry a full cache line without a per-packet slice
	// allocation. Payload normally aliases it but may point elsewhere
	// (hand-built test packets); the data path never assumes aliasing.
	buf [core.CacheLineSize]byte
}

// AllocPayload points Payload at the packet's inline buffer, sized to n
// bytes (n must not exceed one cache line), and returns it for filling.
func (p *Packet) AllocPayload(n int) []byte {
	p.Payload = p.buf[:n:n]
	return p.Payload
}

// Reset clears the packet header and payload reference for pool reuse. The
// inline buffer is left dirty; AllocPayload claims exact ranges.
func (p *Packet) Reset() {
	p.Kind, p.Op, p.Status, p.Flags = 0, 0, 0, 0
	p.Dst, p.Src, p.Ctx, p.Tid = 0, 0, 0, 0
	p.Offset, p.LineIdx, p.Aux = 0, 0, 0
	p.Payload = nil
}

// Atomic operand convention: FetchAdd and CompareSwap requests carry their
// 8-byte operands in Payload (FetchAdd: delta; CompareSwap: expected||new =
// 16 bytes). Replies carry the 8-byte prior value in Payload.

var (
	// ErrShortPacket reports a truncated packet.
	ErrShortPacket = errors.New("proto: short packet")
	// ErrBadPayload reports a payload length exceeding one cache line.
	ErrBadPayload = errors.New("proto: payload exceeds cache line")
	// ErrBadKind reports an unknown packet kind.
	ErrBadKind = errors.New("proto: unknown packet kind")
)

// IsLast reports whether this packet carries the FlagLast marker.
func (p *Packet) IsLast() bool { return p.Flags&FlagLast != 0 }

// String summarizes the packet for tracing.
func (p *Packet) String() string {
	kind := "REQ"
	if p.Kind == KindReply {
		kind = "RPL"
	}
	return fmt.Sprintf("%s %s n%d->n%d ctx=%d tid=%d off=%#x line=%d len=%d st=%s",
		kind, p.Op, p.Src, p.Dst, p.Ctx, p.Tid, p.Offset, p.LineIdx, len(p.Payload), p.Status)
}

// WireSize reports the encoded size of the packet, used by the fabric to
// model serialization delay.
func (p *Packet) WireSize() int { return HeaderSize + len(p.Payload) }

// Marshal encodes the packet into buf, which must have capacity for
// WireSize() bytes; it returns the encoded slice. Marshal is used by the
// wire-format tests and by transports that cross process boundaries; the
// in-process fabric passes Packet values directly.
func (p *Packet) Marshal(buf []byte) ([]byte, error) {
	if len(p.Payload) > core.CacheLineSize {
		return nil, ErrBadPayload
	}
	n := p.WireSize()
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	buf[0] = byte(p.Kind)
	buf[1] = byte(p.Op)
	buf[2] = byte(p.Status)
	buf[3] = p.Flags
	binary.LittleEndian.PutUint16(buf[4:], uint16(p.Dst))
	binary.LittleEndian.PutUint16(buf[6:], uint16(p.Src))
	binary.LittleEndian.PutUint16(buf[8:], uint16(p.Ctx))
	binary.LittleEndian.PutUint16(buf[10:], uint16(p.Tid))
	binary.LittleEndian.PutUint16(buf[12:], uint16(len(p.Payload)))
	binary.LittleEndian.PutUint16(buf[14:], 0)
	binary.LittleEndian.PutUint64(buf[16:], p.Offset)
	binary.LittleEndian.PutUint32(buf[24:], p.LineIdx)
	binary.LittleEndian.PutUint32(buf[28:], p.Aux)
	copy(buf[HeaderSize:], p.Payload)
	return buf, nil
}

// Unmarshal decodes a packet from buf into a fresh packet. The payload is
// copied into the packet's inline buffer, so the result is self-contained
// and may be released with FreePacket.
func Unmarshal(buf []byte) (*Packet, error) {
	p := new(Packet)
	if err := UnmarshalInto(p, buf); err != nil {
		return nil, err
	}
	return p, nil
}

// UnmarshalInto decodes a packet from buf into p (typically obtained from
// AllocPacket), copying the payload into p's inline buffer.
func UnmarshalInto(p *Packet, buf []byte) error {
	if len(buf) < HeaderSize {
		return ErrShortPacket
	}
	p.Kind = Kind(buf[0])
	p.Op = core.Op(buf[1])
	p.Status = core.Status(buf[2])
	p.Flags = buf[3]
	p.Dst = core.NodeID(binary.LittleEndian.Uint16(buf[4:]))
	p.Src = core.NodeID(binary.LittleEndian.Uint16(buf[6:]))
	p.Ctx = core.CtxID(binary.LittleEndian.Uint16(buf[8:]))
	p.Tid = core.Tid(binary.LittleEndian.Uint16(buf[10:]))
	p.Offset = binary.LittleEndian.Uint64(buf[16:])
	p.LineIdx = binary.LittleEndian.Uint32(buf[24:])
	p.Aux = binary.LittleEndian.Uint32(buf[28:])
	p.Payload = nil
	if p.Kind != KindRequest && p.Kind != KindReply {
		return ErrBadKind
	}
	plen := int(binary.LittleEndian.Uint16(buf[12:]))
	if plen > core.CacheLineSize || HeaderSize+plen > len(buf) {
		return ErrShortPacket
	}
	if plen > 0 {
		copy(p.AllocPayload(plen), buf[HeaderSize:HeaderSize+plen])
	}
	return nil
}

// Reply constructs the reply skeleton for a request: swapped route, same op,
// ctx, tid, offset and line index (§6: "the tid ... is transferred from the
// request to the associated reply packet").
func (p *Packet) Reply(status core.Status) *Packet {
	return p.ReplyInto(new(Packet), status)
}

// ReplyInto fills rp (typically obtained from AllocPacket) as the reply
// skeleton for request p and returns it. The allocation-free analogue of
// Reply, used by the RRPP hot path.
func (p *Packet) ReplyInto(rp *Packet, status core.Status) *Packet {
	rp.Kind = KindReply
	rp.Op = p.Op
	rp.Status = status
	rp.Flags = p.Flags
	rp.Dst = p.Src
	rp.Src = p.Dst
	rp.Ctx = p.Ctx
	rp.Tid = p.Tid
	rp.Offset = p.Offset
	rp.LineIdx = p.LineIdx
	rp.Aux = 0
	rp.Payload = nil
	return rp
}
