package proto

import (
	"bytes"
	"testing"

	"sonuma/internal/core"
)

// Fuzz harness for the wire format (run with `go test -fuzz FuzzUnmarshal
// ./internal/proto/`; the committed corpus under testdata/fuzz replays as
// regression seeds in every ordinary `go test`). The messaging layer's new
// configuration/lease frames ride the same packetized wire format, so a
// Marshal/Unmarshal desync here would corrupt epoch state cluster-wide —
// the invariants pinned are: Unmarshal never panics or over-reads,
// anything it accepts survives a Marshal→Unmarshal round trip unchanged,
// and every hand-built valid packet round-trips field-exact.

// packetsEqual compares every wire-visible field.
func packetsEqual(a, b *Packet) bool {
	return a.Kind == b.Kind && a.Op == b.Op && a.Status == b.Status &&
		a.Flags == b.Flags && a.Dst == b.Dst && a.Src == b.Src &&
		a.Ctx == b.Ctx && a.Tid == b.Tid && a.Offset == b.Offset &&
		a.LineIdx == b.LineIdx && a.Aux == b.Aux &&
		bytes.Equal(a.Payload, b.Payload)
}

func FuzzUnmarshal(f *testing.F) {
	// Representative seeds: a read request, a reply with payload, an
	// atomic, a truncated header, a bad kind, an oversized payload claim.
	req := &Packet{Kind: KindRequest, Op: core.OpRead, Dst: 3, Src: 1, Ctx: 7, Tid: 42, Offset: 0x1000, LineIdx: 2}
	blob, _ := req.Marshal(nil)
	f.Add(append([]byte(nil), blob...))
	rpl := &Packet{Kind: KindReply, Op: core.OpWrite, Status: core.StatusOK, Dst: 1, Src: 3, Tid: 42}
	copy(rpl.AllocPayload(64), bytes.Repeat([]byte{0xAB}, 64))
	blob, _ = rpl.Marshal(nil)
	f.Add(append([]byte(nil), blob...))
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))
	f.Add(bytes.Repeat([]byte{0x00}, MaxPacketSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejected: fine, as long as it never panics
		}
		if len(p.Payload) > core.CacheLineSize {
			t.Fatalf("accepted payload of %d bytes > one cache line", len(p.Payload))
		}
		// Whatever Unmarshal accepts must survive a round trip unchanged:
		// a frame that re-encodes differently would desync peers that
		// relay or re-frame packets.
		out, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("re-marshal of accepted packet failed: %v", err)
		}
		q, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-unmarshal of re-marshaled packet failed: %v", err)
		}
		if !packetsEqual(p, q) {
			t.Fatalf("round trip changed packet:\n  first  %v\n  second %v", p, q)
		}
		// Reset + pool-style reuse must not leak the old payload length.
		q.Reset()
		if q.Payload != nil {
			t.Fatal("Reset left a payload reference")
		}
	})
}

func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(0), uint8(1), uint16(0), uint16(1), uint16(7), uint16(9),
		uint64(4096), uint32(3), uint32(0xdead), []byte("payload"))
	f.Add(uint8(2), uint8(4), uint8(2), uint8(0), uint16(500), uint16(501), uint16(0), uint16(0xFFFF),
		^uint64(0), ^uint32(0), uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, kind, op, status, flags uint8, dst, src, ctx, tid uint16,
		offset uint64, lineIdx, aux uint32, payload []byte) {
		if kind != uint8(KindRequest) && kind != uint8(KindReply) {
			kind = uint8(KindRequest) // keep the packet decodable
		}
		if len(payload) > core.CacheLineSize {
			payload = payload[:core.CacheLineSize]
		}
		p := &Packet{
			Kind: Kind(kind), Op: core.Op(op), Status: core.Status(status), Flags: flags,
			Dst: core.NodeID(dst), Src: core.NodeID(src), Ctx: core.CtxID(ctx), Tid: core.Tid(tid),
			Offset: offset, LineIdx: lineIdx, Aux: aux,
		}
		if len(payload) > 0 {
			copy(p.AllocPayload(len(payload)), payload)
		}
		blob, err := p.Marshal(nil)
		if err != nil {
			t.Fatalf("marshal of valid packet failed: %v", err)
		}
		if len(blob) != p.WireSize() {
			t.Fatalf("encoded %d bytes, WireSize says %d", len(blob), p.WireSize())
		}
		q := new(Packet)
		if err := UnmarshalInto(q, blob); err != nil {
			t.Fatalf("unmarshal of marshaled packet failed: %v", err)
		}
		if len(payload) == 0 {
			p.Payload = nil // empty and nil payloads are wire-identical
		}
		if !packetsEqual(p, q) {
			t.Fatalf("round trip changed packet:\n  sent %v\n  got  %v", p, q)
		}
	})
}
