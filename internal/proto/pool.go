package proto

import (
	"sync"

	"sonuma/internal/core"
)

// This file provides the allocation-free steady state of the data path: a
// sync.Pool-backed packet allocator (packets carry their payload in an
// inline cache-line array, so no per-packet byte-slice allocation) and the
// Batch framing type that carries up to MaxBatch line transactions with the
// same route and virtual lane in one fabric send.
//
// Ownership discipline: whoever pulls a packet or batch out of a fabric
// lane owns it and must release it with FreePacket / FreeBatch once done.
// A failed send leaves ownership with the sender.

// MaxBatch is the largest number of line transactions one Batch carries.
// It bounds the per-destination buffering of the RMC's batch builders; the
// RGP flushes a builder as soon as it reaches the configured batch size.
const MaxBatch = 32

var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// AllocPacket returns a packet from the pool with a zeroed header and nil
// payload. The inline payload buffer may hold stale bytes; AllocPayload
// callers overwrite exactly the range they claim.
func AllocPacket() *Packet {
	return pktPool.Get().(*Packet)
}

// FreePacket resets p and returns it to the pool. The caller must not
// retain p or any payload slice obtained from it.
func FreePacket(p *Packet) {
	p.Reset()
	pktPool.Put(p)
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// Batch is one fabric message carrying up to MaxBatch packets that share a
// source, destination, and virtual lane. The fabric charges one credit per
// batch, amortizing lane selection, route validation, and flow control over
// all packets it carries.
type Batch struct {
	kind Kind
	src  core.NodeID
	dst  core.NodeID
	n    int
	pkts [MaxBatch]*Packet
}

// AllocBatch returns an empty batch from the pool. Its route and lane are
// fixed by the first Append.
func AllocBatch() *Batch {
	return batchPool.Get().(*Batch)
}

// FreeBatch returns the batch (not its packets) to the pool.
func FreeBatch(b *Batch) {
	b.reset()
	batchPool.Put(b)
}

// FreeBatchPackets releases every packet in the batch and then the batch
// itself, for paths that drop a batch without processing it.
func FreeBatchPackets(b *Batch) {
	for i := 0; i < b.n; i++ {
		FreePacket(b.pkts[i])
	}
	FreeBatch(b)
}

func (b *Batch) reset() {
	for i := 0; i < b.n; i++ {
		b.pkts[i] = nil
	}
	b.n = 0
	b.kind = 0
	b.src = 0
	b.dst = 0
}

// Append adds a packet to the batch. The first packet fixes the batch's
// kind and route; Append reports false when the batch is full or the packet
// does not share them, in which case the caller flushes and starts a new
// batch.
func (b *Batch) Append(p *Packet) bool {
	if b.n == 0 {
		b.kind, b.src, b.dst = p.Kind, p.Src, p.Dst
	} else if b.n == len(b.pkts) || p.Kind != b.kind || p.Src != b.src || p.Dst != b.dst {
		return false
	}
	b.pkts[b.n] = p
	b.n++
	return true
}

// Len reports the number of packets in the batch.
func (b *Batch) Len() int { return b.n }

// Full reports whether the batch can take no further packet.
func (b *Batch) Full() bool { return b.n == len(b.pkts) }

// Kind reports the virtual lane of the batch (valid once non-empty).
func (b *Batch) Kind() Kind { return b.kind }

// Src reports the source node of the batch (valid once non-empty).
func (b *Batch) Src() core.NodeID { return b.src }

// Dst reports the destination node of the batch (valid once non-empty).
func (b *Batch) Dst() core.NodeID { return b.dst }

// Packets returns the batched packets. The slice aliases the batch and is
// invalidated by FreeBatch.
func (b *Batch) Packets() []*Packet { return b.pkts[:b.n] }

// WireSize reports the summed encoded size of the batch's packets, used by
// the fabric's byte counters.
func (b *Batch) WireSize() int {
	n := 0
	for i := 0; i < b.n; i++ {
		n += b.pkts[i].WireSize()
	}
	return n
}
