package core

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestLines(t *testing.T) {
	cases := map[int]int{
		0: 0, -5: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3,
		8192: 128, 8193: 129,
	}
	for n, want := range cases {
		if got := Lines(n); got != want {
			t.Errorf("Lines(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAlignUp(t *testing.T) {
	cases := map[int]int{0: 0, 1: 64, 64: 64, 65: 128, 8191: 8192}
	for n, want := range cases {
		if got := AlignUp(n); got != want {
			t.Errorf("AlignUp(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: AlignUp(n) is the least multiple of the line size >= n.
func TestPropertyAlignUp(t *testing.T) {
	f := func(n uint16) bool {
		a := AlignUp(int(n))
		return a >= int(n) && a%CacheLineSize == 0 && a-int(n) < CacheLineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpClassification(t *testing.T) {
	if !OpFetchAdd.IsAtomic() || !OpCompareSwap.IsAtomic() {
		t.Fatal("atomics not classified")
	}
	if OpRead.IsAtomic() || OpWrite.IsAtomic() || OpWriteNotify.IsAtomic() {
		t.Fatal("non-atomics classified as atomic")
	}
	if !OpWrite.IsWrite() || !OpWriteNotify.IsWrite() {
		t.Fatal("writes not classified")
	}
	if OpRead.IsWrite() || OpFetchAdd.IsWrite() {
		t.Fatal("non-writes classified as write")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpRead: "rmc_read", OpWrite: "rmc_write",
		OpFetchAdd: "rmc_fetch_add", OpCompareSwap: "rmc_cmp_swap",
		OpWriteNotify: "rmc_write_notify", Op(200): "op(200)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestStatusErr(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Fatal("OK produced an error")
	}
	err := StatusBoundsError.Err()
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusBoundsError {
		t.Fatalf("bounds error: %v", err)
	}
	if !strings.Contains(err.Error(), "bounds") {
		t.Fatalf("error text %q", err.Error())
	}
	for s := Status(0); s < 6; s++ {
		if s.String() == "" {
			t.Fatalf("status %d has empty name", s)
		}
	}
}
