package cache

import (
	"testing"

	"sonuma/internal/sim"
)

// fixedMem is a Level with constant latency, counting accesses.
type fixedMem struct {
	eng      *sim.Engine
	latency  sim.Time
	accesses int
	writes   int
}

func (m *fixedMem) Access(addr uint64, write bool, done func()) {
	m.accesses++
	if write {
		m.writes++
	}
	m.eng.After(m.latency, done)
}

func newTestCache(eng *sim.Engine, size, ways, mshrs int) (*Cache, *fixedMem) {
	mem := &fixedMem{eng: eng, latency: 60 * sim.Nanosecond}
	c := New(eng, Params{Name: "t", Size: size, Ways: ways, Latency: 2 * sim.Nanosecond, MSHRs: mshrs}, mem)
	return c, mem
}

// access runs a single blocking access and returns its latency.
func access(eng *sim.Engine, c *Cache, addr uint64, write bool) sim.Time {
	start := eng.Now()
	var end sim.Time
	c.Access(addr, write, func() { end = eng.Now() })
	eng.Run()
	return end - start
}

func TestMissThenHit(t *testing.T) {
	eng := sim.New()
	c, mem := newTestCache(eng, 1024, 2, 8)
	missLat := access(eng, c, 0x1000, false)
	if missLat < 60*sim.Nanosecond {
		t.Fatalf("miss latency %v too low", missLat)
	}
	hitLat := access(eng, c, 0x1000, false)
	if hitLat != 2*sim.Nanosecond {
		t.Fatalf("hit latency %v, want 2ns", hitLat)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || mem.accesses != 1 {
		t.Fatalf("stats: %+v mem=%d", c.Stats, mem.accesses)
	}
}

func TestSameLineDifferentWordsHit(t *testing.T) {
	eng := sim.New()
	c, _ := newTestCache(eng, 1024, 2, 8)
	access(eng, c, 0x40, false)
	if lat := access(eng, c, 0x7F, false); lat != 2*sim.Nanosecond {
		t.Fatalf("same-line access missed: %v", lat)
	}
}

func TestLRUEviction(t *testing.T) {
	eng := sim.New()
	// 2 ways x 2 sets x 64B = 256B cache.
	c, _ := newTestCache(eng, 256, 2, 8)
	// Three lines mapping to set 0 (line addresses 0, 2, 4 with 2 sets).
	access(eng, c, 0*64, false)
	access(eng, c, 2*64, false)
	access(eng, c, 0*64, false) // touch: line 0 is MRU
	access(eng, c, 4*64, false) // evicts line 2
	if !c.Contains(0 * 64) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(2 * 64) {
		t.Fatal("LRU line survived")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	eng := sim.New()
	c, mem := newTestCache(eng, 256, 2, 8)
	access(eng, c, 0*64, true) // dirty line in set 0
	access(eng, c, 2*64, false)
	access(eng, c, 4*64, false) // evicts dirty line 0
	eng.Run()
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	if mem.writes != 1 {
		t.Fatalf("memory writes = %d, want 1 (the writeback)", mem.writes)
	}
}

func TestMSHRMerging(t *testing.T) {
	eng := sim.New()
	c, mem := newTestCache(eng, 1024, 2, 8)
	done := 0
	for i := 0; i < 5; i++ {
		c.Access(0x2000+uint64(i*8), false, func() { done++ })
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("%d callbacks fired, want 5", done)
	}
	if mem.accesses != 1 {
		t.Fatalf("memory saw %d accesses, want 1 (merged)", mem.accesses)
	}
	if c.Stats.Merges != 4 {
		t.Fatalf("merges = %d, want 4", c.Stats.Merges)
	}
}

func TestMSHRLimitThrottles(t *testing.T) {
	eng := sim.New()
	c, _ := newTestCache(eng, 4096, 2, 2) // only 2 MSHRs
	done := 0
	for i := 0; i < 6; i++ {
		c.Access(uint64(i)*64, false, func() { done++ })
	}
	eng.Run()
	if done != 6 {
		t.Fatalf("%d callbacks fired, want 6 (stalled misses must complete)", done)
	}
	if c.Stats.Misses != 6 {
		t.Fatalf("misses = %d", c.Stats.Misses)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() sim.Time {
		eng := sim.New()
		c, _ := newTestCache(eng, 512, 2, 4)
		for i := 0; i < 64; i++ {
			c.Access(uint64(i%12)*64, i%3 == 0, func() {})
		}
		return eng.Run()
	}
	if run() != run() {
		t.Fatal("cache timing not deterministic")
	}
}

func TestHitRate(t *testing.T) {
	eng := sim.New()
	c, _ := newTestCache(eng, 4096, 4, 8)
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 8; i++ {
			access(eng, c, uint64(i)*64, false)
		}
	}
	// 8 cold misses, 24 hits.
	if hr := c.Stats.HitRate(); hr < 0.74 || hr > 0.76 {
		t.Fatalf("hit rate %.3f, want 0.75", hr)
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	eng := sim.New()
	mem := &fixedMem{eng: eng, latency: 60 * sim.Nanosecond}
	l2 := New(eng, Params{Name: "l2", Size: 4096, Ways: 4, Latency: 3 * sim.Nanosecond, MSHRs: 8}, mem)
	l1 := New(eng, Params{Name: "l1", Size: 256, Ways: 2, Latency: 1 * sim.Nanosecond, MSHRs: 4}, l2)
	// Cold: misses both levels.
	cold := access(eng, l1, 0x100, false)
	if cold < 64*sim.Nanosecond {
		t.Fatalf("cold access %v too fast", cold)
	}
	// Evict from L1 by thrashing its set, then re-access: L2 hit.
	access(eng, l1, 0x100+4*256, false)
	access(eng, l1, 0x100+8*256, false)
	warm := access(eng, l1, 0x100, false)
	if warm >= cold || warm < 4*sim.Nanosecond {
		t.Fatalf("L2 hit latency %v (cold %v)", warm, cold)
	}
	if mem.accesses != 3 {
		t.Fatalf("memory accesses = %d, want 3", mem.accesses)
	}
}
