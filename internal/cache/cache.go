// Package cache models set-associative write-back caches with MSHR-based
// miss handling for the cycle-level soNUMA node (Table 1: 32 KB 2-way L1
// with 32 MSHRs and 3-cycle latency; 4 MB 16-way L2 with 6-cycle latency).
// The RMC's private L1 — its integration point into the node's coherence
// hierarchy (§4.3) — is an instance of the same model.
package cache

import (
	"sonuma/internal/sim"
)

// LineSize is fixed at 64 bytes across the hierarchy.
const LineSize = 64

// Level is anything that can service a line access: a lower cache or the
// memory controller adapter.
type Level interface {
	// Access requests the 64-byte line containing addr; done fires when
	// the line is available (reads) or accepted (writes).
	Access(addr uint64, write bool, done func())
}

// Params configure one cache.
type Params struct {
	// Name identifies the cache in statistics.
	Name string
	// Size is the capacity in bytes.
	Size int
	// Ways is the set associativity.
	Ways int
	// Latency is the tag+data access time.
	Latency sim.Time
	// MSHRs bounds outstanding misses; further misses to new lines
	// stall until an MSHR frees. Merging requests to the same line
	// consumes no additional MSHR.
	MSHRs int
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Merges     uint64 // accesses merged into an in-flight miss
	Writebacks uint64
	Fills      uint64
}

// HitRate reports hits/(hits+misses+merges).
func (s *Stats) HitRate() float64 {
	n := s.Hits + s.Misses + s.Merges
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	used  uint64
}

type mshr struct {
	addr    uint64 // line address
	waiters []func()
	write   bool
}

// Cache is one write-back, write-allocate cache level.
type Cache struct {
	eng   *sim.Engine
	p     Params
	next  Level
	sets  [][]line
	nsets uint64
	tick  uint64

	inflight map[uint64]*mshr // by line address
	tokens   *sim.TokenPool

	Stats Stats
}

// New builds a cache over the given next level.
func New(eng *sim.Engine, p Params, next Level) *Cache {
	nsets := p.Size / (LineSize * p.Ways)
	if nsets < 1 {
		nsets = 1
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, p.Ways)
	}
	if p.MSHRs <= 0 {
		p.MSHRs = 32
	}
	return &Cache{
		eng:      eng,
		p:        p,
		next:     next,
		sets:     sets,
		nsets:    uint64(nsets),
		inflight: make(map[uint64]*mshr),
		tokens:   sim.NewTokenPool(eng, p.MSHRs),
	}
}

// Params returns the cache configuration.
func (c *Cache) Params() Params { return c.p }

func (c *Cache) index(lineAddr uint64) (set uint64, tag uint64) {
	return lineAddr % c.nsets, lineAddr / c.nsets
}

// lookup returns the way holding tag, or -1.
func (c *Cache) lookup(set []line, tag uint64) int {
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return i
		}
	}
	return -1
}

// Access implements Level.
func (c *Cache) Access(addr uint64, write bool, done func()) {
	lineAddr := addr / LineSize
	set, tag := c.index(lineAddr)
	ways := c.sets[set]
	c.tick++
	if w := c.lookup(ways, tag); w >= 0 {
		c.Stats.Hits++
		ways[w].used = c.tick
		if write {
			ways[w].dirty = true
		}
		c.eng.After(c.p.Latency, done)
		return
	}
	// Miss: merge into an in-flight MSHR when possible.
	if m, ok := c.inflight[lineAddr]; ok {
		c.Stats.Merges++
		m.waiters = append(m.waiters, done)
		m.write = m.write || write
		return
	}
	c.Stats.Misses++
	m := &mshr{addr: lineAddr, waiters: []func(){done}, write: write}
	c.inflight[lineAddr] = m
	c.tokens.Acquire(func() {
		// Tag lookup latency before the miss goes down a level.
		c.eng.After(c.p.Latency, func() {
			c.next.Access(lineAddr*LineSize, false, func() {
				c.fill(m)
			})
		})
	})
}

// fill installs the returned line, handles the victim writeback, and wakes
// the mergees.
func (c *Cache) fill(m *mshr) {
	c.Stats.Fills++
	set, tag := c.index(m.addr)
	ways := c.sets[set]
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		c.Stats.Writebacks++
		victimLine := ways[victim].tag*c.nsets + set
		// Writebacks consume downstream bandwidth but nothing waits
		// on them.
		c.next.Access(victimLine*LineSize, true, func() {})
	}
	c.tick++
	ways[victim] = line{valid: true, dirty: m.write, tag: tag, used: c.tick}
	delete(c.inflight, m.addr)
	c.tokens.Release()
	for _, w := range m.waiters {
		c.eng.After(0, w)
	}
}

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr / LineSize
	set, tag := c.index(lineAddr)
	return c.lookup(c.sets[set], tag) >= 0
}

// DRAMAdapter adapts a memory controller into a Level.
type DRAMAdapter struct {
	Access64 func(lineAddr uint64, write bool, done func())
}

// Access implements Level.
func (a *DRAMAdapter) Access(addr uint64, write bool, done func()) {
	a.Access64(addr/LineSize, write, done)
}
