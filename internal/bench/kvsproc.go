package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sonuma"
	"sonuma/internal/kvs"
	"sonuma/internal/stats"
)

// This file is the kvs experiment's multi-process mode (-transport proc):
// the same YCSB-style mixes, failover run, and coordinator-kill run as
// kvs.go, but with the four store members hosted by real sonuma-node OS
// processes and only the clients in this process. Every GET and PUT
// crosses process boundaries over the socket fabric, node failure is a
// real SIGKILL (memory gone, sockets torn mid-frame), and the numbers
// report what the one-sided protocol costs when the fabric is made of
// actual kernel-crossed transports instead of channels.

// KVSProcCoordStat records the cross-process coordinator kill: the daemon
// holding the epoch authority is SIGKILLed mid-load and never restarted;
// a successor must activate a new term with no operator input.
type KVSProcCoordStat struct {
	SeedCoordinator int    `json:"seed_coordinator"`
	Successor       int    `json:"successor"`
	TermStart       uint64 `json:"term_start"`
	TermEnd         uint64 `json:"term_end"`
	// FailoverMs: SIGKILL delivered → first PUT acknowledged into a shard
	// the dead coordinator led.
	FailoverMs float64 `json:"failover_ms"`
	// StalledWrites counts PUT attempts that surfaced a definite error
	// during the blackout; CompletedAfter counts the writes that then
	// landed under the successor's term.
	StalledWrites  int `json:"stalled_writes"`
	CompletedAfter int `json:"completed_after_failover"`
	// ReplicasIdentical audits the surviving replicas of the contested
	// keys after the succession settles.
	ReplicasIdentical bool `json:"replicas_identical"`
}

// KVSProcData is the measurement set of the multi-process kvs experiment.
type KVSProcData struct {
	GeneratedAt string            `json:"generated_at"`
	Seed        uint64            `json:"seed"`
	Nodes       int               `json:"nodes"`   // fabric size across all processes
	Daemons     int               `json:"daemons"` // sonuma-node processes (store members)
	Shards      int               `json:"shards"`
	Replicas    int               `json:"replicas"`
	Keys        int               `json:"keys"`
	Results     []KVSStat         `json:"results"`
	Failover    *KVSFailoverStat  `json:"failover,omitempty"`
	CoordKill   *KVSProcCoordStat `json:"coord_kill,omitempty"`
}

// kvsProcHarness is one booted multi-process cluster: the members live in
// daemons, the clients on parent-hosted fabric nodes.
type kvsProcHarness struct {
	pc      *sonuma.ProcCluster
	members []int
	stores  []*kvs.Store  // parent-side client-only stores, one per client node
	clients []*kvs.Client // one per client node
	keys    [][]byte
	seed    uint64
	closed  bool
}

// kvsProcCtxID must match the context id sonuma-node daemons open their
// store on.
const kvsProcCtxID = 3

// startKVSProc boots members+clients fabric nodes: one sonuma-node daemon
// per member, the client nodes hosted here. bin is a pre-resolved daemon
// binary ("" lets the cluster resolve one itself).
func startKVSProc(members, clients, keyCount int, cfg kvs.Config, seed uint64, bin string) (*kvsProcHarness, error) {
	total := members + clients
	memberIDs := make([]int, members)
	for i := range memberIDs {
		memberIDs[i] = i
	}
	localIDs := make([]int, clients)
	for i := range localIDs {
		localIDs[i] = members + i
	}
	cfg.Members = memberIDs
	blob, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	pc, err := sonuma.StartProcCluster(sonuma.ProcOptions{
		Nodes:         total,
		Daemons:       memberIDs,
		Local:         localIDs,
		BinPath:       bin,
		ServiceConfig: blob,
	})
	if err != nil {
		return nil, err
	}
	h := &kvsProcHarness{pc: pc, members: memberIDs, seed: seed}
	// The daemons' member stores are open by the time StartProcCluster
	// returns (a daemon answers control pings only after its store is up),
	// so the client-only opens and their geometry probes find live peers.
	for _, id := range localIDs {
		ctx, err := pc.Cluster().Node(id).OpenContext(kvsProcCtxID, cfg.SegmentSize(total)+4096)
		if err != nil {
			pc.Close()
			return nil, err
		}
		s, err := kvs.Open(ctx, cfg)
		if err != nil {
			pc.Close()
			return nil, fmt.Errorf("client-only store on node %d: %w", id, err)
		}
		h.stores = append(h.stores, s)
	}
	for _, s := range h.stores {
		c, err := s.NewClient()
		if err != nil {
			h.close()
			return nil, err
		}
		h.clients = append(h.clients, c)
	}
	h.keys = make([][]byte, keyCount)
	for i := range h.keys {
		h.keys[i] = []byte(fmt.Sprintf("user%08d", i))
	}
	return h, nil
}

// close is idempotent so callers can tear a cluster down eagerly (to
// free its daemons' CPU before the next cluster boots) while keeping a
// defer for error paths.
func (h *kvsProcHarness) close() {
	if h.closed {
		return
	}
	h.closed = true
	for _, s := range h.stores {
		s.Close()
	}
	h.pc.Close()
}

func (h *kvsProcHarness) preload(valueSize int) error {
	val := benchValue(valueSize, 0)
	for i, k := range h.keys {
		if err := h.clients[i%len(h.clients)].Put(k, val); err != nil {
			return fmt.Errorf("preload %q: %w", k, err)
		}
	}
	return nil
}

// daemonStats fetches one daemon's store counters over its control socket.
func (h *kvsProcHarness) daemonStats(id int) (kvs.StoreStats, error) {
	info, err := h.pc.Info(id)
	if err != nil {
		return kvs.StoreStats{}, err
	}
	var st kvs.StoreStats
	if err := json.Unmarshal(info.Stats, &st); err != nil {
		return kvs.StoreStats{}, fmt.Errorf("daemon n%d stats: %w", id, err)
	}
	return st, nil
}

// serverCounters sums MsgsHandled and PutsForwarded across every store in
// the cluster: the member daemons (polled over their control sockets) and
// the parent-side client-only stores. Both sides matter for the one-sided
// audit — a forwarded PUT counts at the forwarding origin (PutsForwarded,
// here in the parent) and costs two handler invocations (the PUT at the
// daemon primary, its ack back at the origin).
func (h *kvsProcHarness) serverCounters() (msgs, fwd uint64, err error) {
	for _, id := range h.members {
		st, err := h.daemonStats(id)
		if err != nil {
			return 0, 0, err
		}
		msgs += st.MsgsHandled
		fwd += st.PutsForwarded
	}
	for _, s := range h.stores {
		st := s.Stats()
		msgs += st.MsgsHandled
		fwd += st.PutsForwarded
	}
	return msgs, fwd, nil
}

// runMix drives one workload row across the socket fabric — the same mix
// loop as the in-process harness, with server-side counters collected
// over the daemons' control sockets.
func (h *kvsProcHarness) runMix(w kvsWorkload, dist string, valueSize, totalOps, getBurst int) (KVSStat, error) {
	nc := len(h.clients)
	perClient := totalOps / nc
	latencies := make([][]float64, nc)
	errs := make([]error, nc)
	msgs0, fwd0, err := h.serverCounters()
	if err != nil {
		return KVSStat{}, err
	}

	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < nc; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			latencies[ci], errs[ci] = h.clientMix(ci, w, dist, valueSize, perClient, getBurst)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return KVSStat{}, err
		}
	}
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	ops := len(all)
	msgs1, fwd1, err := h.serverCounters()
	if err != nil {
		return KVSStat{}, err
	}
	msgs, fwd := msgs1-msgs0, fwd1-fwd0
	return KVSStat{
		Workload:              w.name,
		Dist:                  dist,
		ReadPct:               w.readPct,
		ValueSize:             valueSize,
		GetBurst:              getBurst,
		Ops:                   ops,
		OpsPerSec:             float64(ops) / elapsed,
		P50Us:                 all[ops/2],
		P99Us:                 all[ops*99/100],
		ServerMsgsHandled:     msgs,
		GetHandlerInvocations: int64(msgs) - 2*int64(fwd),
	}, nil
}

func (h *kvsProcHarness) clientMix(ci int, w kvsWorkload, dist string, valueSize, ops, getBurst int) ([]float64, error) {
	client := h.clients[ci]
	picker := newPicker(dist, len(h.keys), h.seed^(uint64(ci)*0x1000+7))
	opRNG := stats.NewRNG(h.seed + uint64(ci) + 0x5eed)
	lat := make([]float64, 0, ops)
	burst := make([][]byte, 0, getBurst)

	flush := func() error {
		if len(burst) == 0 {
			return nil
		}
		t0 := time.Now()
		_, gerrs := client.MultiGet(burst)
		per := float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(len(burst))
		for _, err := range gerrs {
			if err != nil && !errors.Is(err, kvs.ErrNotFound) {
				return err
			}
			lat = append(lat, per)
		}
		burst = burst[:0]
		return nil
	}

	gen := 0
	for i := 0; i < ops; i++ {
		key := h.keys[picker.next()]
		if opRNG.Intn(100) < w.readPct {
			burst = append(burst, key)
			if len(burst) == getBurst {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		gen++
		t0 := time.Now()
		if err := client.Put(key, benchValue(valueSize, gen)); err != nil {
			return nil, err
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return lat, nil
}

// busiestPrimary picks the member (other than the seed coordinator)
// leading the most shards.
func (h *kvsProcHarness) busiestPrimary() int {
	ring := h.stores[0].Ring()
	leads := make(map[int]int)
	for s := 0; s < ring.Shards(); s++ {
		leads[ring.Owners(s)[0]]++
	}
	victim := h.members[1]
	for _, m := range h.members[1:] {
		if leads[m] > leads[victim] {
			victim = m
		}
	}
	return victim
}

// runFailover is the standard failover run across process boundaries: a
// read-mostly zipfian mix, and at the halfway mark every fabric link of a
// busy primary daemon is cut — an administrative cut broadcast to every
// process, so each daemon observes the same link-failure epochs. Clients
// retry until every operation completes.
func (h *kvsProcHarness) runFailover(totalOps, valueSize int) (*KVSFailoverStat, error) {
	victim := h.busiestPrimary()
	nc := len(h.clients)
	perClient := totalOps / nc
	var completed, retried atomic.Int64
	half := int64(perClient*nc) / 2
	tripwire := make(chan struct{})
	var once sync.Once

	errs := make([]error, nc)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < nc; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := h.clients[ci]
			picker := newPicker("zipfian", len(h.keys), h.seed^(uint64(ci)*31+99))
			opRNG := stats.NewRNG(h.seed + uint64(ci) ^ 0xfa11)
			gen := 0
			for i := 0; i < perClient; i++ {
				key := h.keys[picker.next()]
				isRead := opRNG.Intn(100) < 95
				var lastErr error
				ok := false
				for attempt := 0; attempt < 200; attempt++ {
					if isRead {
						_, err := client.Get(key)
						if err == nil || errors.Is(err, kvs.ErrNotFound) {
							ok = true
						} else {
							lastErr = err
						}
					} else {
						gen++
						if err := client.Put(key, benchValue(valueSize, gen)); err == nil {
							ok = true
						} else {
							lastErr = err
						}
					}
					if ok {
						break
					}
					retried.Add(1)
				}
				if !ok {
					errs[ci] = fmt.Errorf("op on %q never completed after failover: %w", key, lastErr)
					return
				}
				if completed.Add(1) == half {
					once.Do(func() { close(tripwire) })
				}
			}
		}()
	}

	failDone := make(chan struct{})
	go func() {
		defer close(failDone)
		<-tripwire
		for i := 0; i < h.pc.Cluster().Nodes(); i++ {
			if i != victim {
				h.pc.FailLink(victim, i)
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	once.Do(func() { close(tripwire) })
	<-failDone
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var promotions uint64
	for _, m := range h.members {
		if m == victim {
			continue // fully cut off; its control socket is unreachable
		}
		st, err := h.daemonStats(m)
		if err != nil {
			return nil, err
		}
		promotions += st.Promotions
	}
	return &KVSFailoverStat{
		Workload:   "B",
		Dist:       "zipfian",
		FailedNode: victim,
		Ops:        perClient * nc,
		Completed:  int(completed.Load()),
		Retried:    int(retried.Load()),
		Promotions: promotions,
		OpsPerSec:  float64(completed.Load()) / elapsed,
	}, nil
}

// runCoordKill SIGKILLs the seed coordinator's daemon under load and
// hammers the shards it led from a client until the deterministic
// succession re-acknowledges every one — the cross-process version of the
// node-fail coordinator run, with a real dead process instead of flags.
func (h *kvsProcHarness) runCoordKill(lease time.Duration) (*KVSProcCoordStat, error) {
	coord := h.members[0]
	witness := h.stores[0]
	client := h.clients[0]
	ring := witness.Ring()
	st := &KVSProcCoordStat{
		SeedCoordinator: coord,
		TermStart:       witness.Term(),
	}

	var keys [][]byte
	for _, k := range h.keys {
		if ring.Owners(ring.ShardOf(k))[0] == coord {
			keys = append(keys, k)
			if len(keys) == 16 {
				break
			}
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("coord-kill: coordinator %d leads no preloaded key", coord)
	}

	if err := h.pc.KillNode(coord); err != nil {
		return nil, err
	}
	killedAt := time.Now()

	deadline := killedAt.Add(60*lease + 30*time.Second)
	landed := make(map[string]bool, len(keys))
	putErr := make(chan error, 1)
	gen := 0
	for len(landed) < len(keys) {
		for _, k := range keys {
			if landed[string(k)] {
				continue
			}
			gen++
			k, g := k, gen
			go func() { putErr <- client.Put(k, benchValue(64, g)) }()
			var err error
			select {
			case err = <-putErr:
			case <-time.After(10*lease + 10*time.Second):
				return nil, fmt.Errorf("coord-kill: put on %q wedged past %s — hang, not a definite error",
					k, 10*lease+10*time.Second)
			}
			if err == nil {
				if st.FailoverMs == 0 {
					st.FailoverMs = time.Since(killedAt).Seconds() * 1e3
				}
				landed[string(k)] = true
				st.CompletedAfter++
				continue
			}
			st.StalledWrites++
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("coord-kill: write on %q never completed after the authority died: %w", k, err)
			}
		}
	}

	st.Successor = witness.Coordinator()
	if st.Successor == coord {
		return nil, fmt.Errorf("coord-kill: writes completed but the term never moved off the dead coordinator")
	}
	if !witness.EpochDown(coord) {
		return nil, fmt.Errorf("coord-kill: successor's epoch did not evict the dead coordinator")
	}

	st.ReplicasIdentical = true
	for _, k := range keys {
		var ref []byte
		var refSet bool
		for _, o := range ring.Owners(ring.ShardOf(k)) {
			if o == coord {
				continue
			}
			got, err := client.GetReplica(o, k)
			if err != nil {
				return nil, fmt.Errorf("coord-kill audit GetReplica(%d, %q): %w", o, k, err)
			}
			if !refSet {
				ref, refSet = got, true
			} else if string(got) != string(ref) {
				return nil, fmt.Errorf("coord-kill: replica divergence on %q", k)
			}
		}
	}
	st.TermEnd = witness.Term()
	return st, nil
}

// KVSProc measures the sharded KV service across real OS processes: the
// zipfian A/B/C mixes, the standard failover run, and a coordinator
// SIGKILL, all with the four store members in sonuma-node daemons.
func KVSProc(o Options) (KVSProcData, error) {
	const (
		members  = 4
		clients  = 4
		shards   = 32
		replicas = 2
		buckets  = 512
		slotSize = 256
		getBurst = 8
	)
	keyCount := o.ops(1500, 400)
	rowOps := o.ops(6000, 1000)
	cfg := kvs.Config{Shards: shards, Replicas: replicas, Buckets: buckets, SlotSize: slotSize}

	// One daemon binary serves all three clusters.
	binDir, err := os.MkdirTemp("", "sonuma-node-bin-")
	if err != nil {
		return KVSProcData{}, err
	}
	defer os.RemoveAll(binDir)
	bin, err := sonuma.ResolveNodeBinary("", binDir)
	if err != nil {
		return KVSProcData{}, err
	}

	h, err := startKVSProc(members, clients, keyCount, cfg, o.seed(), bin)
	if err != nil {
		return KVSProcData{}, err
	}
	defer h.close()
	if err := h.preload(64); err != nil {
		return KVSProcData{}, err
	}

	d := KVSProcData{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        o.seed(),
		Nodes:       members + clients,
		Daemons:     members,
		Shards:      shards,
		Replicas:    replicas,
		Keys:        keyCount,
	}
	for _, w := range kvsWorkloads {
		s, err := h.runMix(w, "zipfian", 64, rowOps, getBurst)
		if err != nil {
			return d, fmt.Errorf("workload %s/zipfian: %w", w.name, err)
		}
		d.Results = append(d.Results, s)
	}
	// Tear each cluster down before booting the next: the runs are
	// independent, and keeping twelve daemons alive at once starves the
	// active four of CPU on small hosts (heartbeats miss, nodes get
	// evicted, the run wedges).
	h.close()

	// Fault runs each get a fresh cluster of fresh processes: the mixes
	// above must not run on a degraded fabric, and a SIGKILLed coordinator
	// stays dead.
	faultCfg := cfg
	faultCfg.Lease = 80 * time.Millisecond
	fh, err := startKVSProc(members, clients, keyCount, faultCfg, o.seed(), bin)
	if err != nil {
		return d, err
	}
	defer fh.close()
	if err := fh.preload(64); err != nil {
		return d, err
	}
	if d.Failover, err = fh.runFailover(o.ops(3000, 600), 64); err != nil {
		return d, fmt.Errorf("proc failover run (seed %d): %w", o.seed(), err)
	}
	fh.close()

	ch, err := startKVSProc(members, clients, keyCount, faultCfg, o.seed(), bin)
	if err != nil {
		return d, err
	}
	defer ch.close()
	if err := ch.preload(64); err != nil {
		return d, err
	}
	if d.CoordKill, err = ch.runCoordKill(faultCfg.Lease); err != nil {
		return d, fmt.Errorf("proc coordinator-kill run (seed %d): %w", o.seed(), err)
	}
	return d, nil
}

// WriteJSON writes the measurement set to path as indented JSON.
func (d KVSProcData) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Tables renders the measurements as paper-style text tables.
func (d KVSProcData) Tables() []*stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Sharded KV service, multi-process (%d fabric nodes, %d daemons, %d shards, %d replicas, %d keys, seed %d)",
			d.Nodes, d.Daemons, d.Shards, d.Replicas, d.Keys, d.Seed),
		"mix", "dist", "read%", "val B", "ops/sec", "p50 us", "p99 us", "srv msgs", "get handlers")
	for _, r := range d.Results {
		t.AddRow(r.Workload, r.Dist,
			fmt.Sprintf("%d", r.ReadPct),
			fmt.Sprintf("%d", r.ValueSize),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.2f", r.P50Us),
			fmt.Sprintf("%.2f", r.P99Us),
			fmt.Sprintf("%d", r.ServerMsgsHandled),
			fmt.Sprintf("%d", r.GetHandlerInvocations))
	}
	out := []*stats.Table{t}
	if f := d.Failover; f != nil {
		ft := stats.NewTable("KV failover, multi-process (all links of a primary daemon cut mid-load)",
			"mix", "dist", "failed node", "ops", "completed", "retries", "promotions", "ops/sec")
		ft.AddRow(f.Workload, f.Dist,
			fmt.Sprintf("%d", f.FailedNode),
			fmt.Sprintf("%d", f.Ops),
			fmt.Sprintf("%d", f.Completed),
			fmt.Sprintf("%d", f.Retried),
			fmt.Sprintf("%d", f.Promotions),
			fmt.Sprintf("%.0f", f.OpsPerSec))
		out = append(out, ft)
	}
	if c := d.CoordKill; c != nil {
		ct := stats.NewTable("KV coordinator SIGKILL, multi-process (authority process killed; succession takes over)",
			"coord", "successor", "term", "failover ms", "stalled", "completed", "replicas identical")
		ct.AddRow(
			fmt.Sprintf("%d", c.SeedCoordinator),
			fmt.Sprintf("%d", c.Successor),
			fmt.Sprintf("%d→%d", c.TermStart, c.TermEnd),
			fmt.Sprintf("%.1f", c.FailoverMs),
			fmt.Sprintf("%d", c.StalledWrites),
			fmt.Sprintf("%d", c.CompletedAfter),
			fmt.Sprintf("%v", c.ReplicasIdentical))
		out = append(out, ct)
	}
	return out
}
