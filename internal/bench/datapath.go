package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"sonuma"
	"sonuma/internal/stats"
)

// This file measures the batched RMC data path itself (rather than a paper
// figure): per-operation latency distribution, throughput, and allocations
// for the headline operations, in a machine-readable form (BENCH.json) so
// successive PRs can track the performance trajectory.

// DataPathStat is one measured data-path operation.
type DataPathStat struct {
	Name        string  `json:"name"`
	Bytes       int     `json:"bytes"`         // transfer size per op
	BatchSize   int     `json:"batch_size"`    // lines per fabric batch in THIS row's config
	Ops         int     `json:"ops"`           // measured operations
	OpsPerSec   float64 `json:"ops_per_sec"`   // sustained rate
	P50Us       float64 `json:"p50_us"`        // median latency
	P99Us       float64 `json:"p99_us"`        // tail latency
	AllocsPerOp float64 `json:"allocs_per_op"` // heap allocations per op
}

// DataPathData is the full data-path measurement set.
type DataPathData struct {
	GeneratedAt string         `json:"generated_at"`
	Results     []DataPathStat `json:"results"`
}

// measureOp runs op() `ops` times, collecting per-op latency and the heap
// allocation delta across the loop. The allocation count includes
// everything the process allocates during the run — the RMC pipelines are
// allocation-free in steady state, so a near-zero value here demonstrates
// exactly that.
func measureOp(name string, bytes, ops int, op func() error) (DataPathStat, error) {
	lat := make([]float64, ops)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := op(); err != nil {
			return DataPathStat{}, err
		}
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e3
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	sort.Float64s(lat)
	return DataPathStat{
		Name:        name,
		Bytes:       bytes,
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed,
		P50Us:       lat[ops/2],
		P99Us:       lat[ops*99/100],
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
	}, nil
}

// dpCluster builds the standard 2-node measurement cluster.
func dpCluster(cfg sonuma.Config) (*sonuma.Cluster, *sonuma.QP, *sonuma.Buffer, error) {
	const segSize = 4 << 20
	cfg.Nodes = 2
	cl, err := sonuma.NewCluster(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx, err := cl.Node(0).OpenContext(1, segSize)
	if err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	if _, err := cl.Node(1).OpenContext(1, segSize); err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	qp, err := ctx.NewQP(128)
	if err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	buf, err := ctx.AllocBuffer(1 << 20)
	if err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	return cl, qp, buf, nil
}

// measureRead measures synchronous remote reads of the given size under
// the given cluster configuration.
func measureRead(name string, size, ops int, cfg sonuma.Config) (DataPathStat, error) {
	cl, qp, buf, err := dpCluster(cfg)
	if err != nil {
		return DataPathStat{}, err
	}
	defer cl.Close()
	for i := 0; i < ops/10+1; i++ { // warm pools and TLB
		if err := qp.Read(1, 0, buf, 0, size); err != nil {
			return DataPathStat{}, err
		}
	}
	s, err := measureOp(name, size, ops, func() error {
		return qp.Read(1, 0, buf, 0, size)
	})
	s.BatchSize = cfg.EffectiveBatchSize()
	return s, err
}

// DataPath measures the batched data path: single-line and 4KB reads, the
// per-packet 4KB baseline, 4KB writes, and a messenger round trip.
func DataPath(o Options) (DataPathData, error) {
	ops := o.ops(20000, 2000)
	d := DataPathData{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	add := func(s DataPathStat, err error) error {
		if err != nil {
			return err
		}
		if s.BatchSize == 0 {
			s.BatchSize = sonuma.Config{}.EffectiveBatchSize()
		}
		d.Results = append(d.Results, s)
		return nil
	}
	if err := add(measureRead("read_64B", 64, ops, sonuma.Config{})); err != nil {
		return d, err
	}
	if err := add(measureRead("read_4KB_batched", 4096, ops, sonuma.Config{})); err != nil {
		return d, err
	}
	if err := add(measureRead("read_4KB_per_packet", 4096, ops, sonuma.Config{BatchSize: 1})); err != nil {
		return d, err
	}

	// 4KB batched write.
	cl, qp, buf, err := dpCluster(sonuma.Config{})
	if err != nil {
		return d, err
	}
	for i := 0; i < ops/10+1; i++ {
		if err := qp.Write(1, 0, buf, 0, 4096); err != nil {
			cl.Close()
			return d, err
		}
	}
	err = add(measureOp("write_4KB_batched", 4096, ops, func() error {
		return qp.Write(1, 0, buf, 0, 4096)
	}))
	cl.Close()
	if err != nil {
		return d, err
	}

	// Messenger 64B send (receiver drains on a second goroutine).
	if err := d.measureMessenger(ops); err != nil {
		return d, err
	}
	return d, nil
}

func (d *DataPathData) measureMessenger(ops int) error {
	const segSize = 1 << 20
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		return err
	}
	defer cl.Close()
	var ms [2]*sonuma.Messenger
	for i := 0; i < 2; i++ {
		ctx, err := cl.Node(i).OpenContext(1, segSize)
		if err != nil {
			return err
		}
		qp, err := ctx.NewQP(0)
		if err != nil {
			return err
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, sonuma.MessengerConfig{}); err != nil {
			return err
		}
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < ops; i++ {
			if _, err := ms[1].Recv(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	msg := make([]byte, 64)
	s, err := measureOp("msg_send_64B", 64, ops, func() error {
		return ms[0].Send(1, msg)
	})
	if err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}
	s.BatchSize = sonuma.Config{}.EffectiveBatchSize()
	d.Results = append(d.Results, s)
	return nil
}

// WriteJSON writes the measurement set to path as indented JSON.
func (d DataPathData) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Tables renders the measurements as a paper-style text table.
func (d DataPathData) Tables() []*stats.Table {
	t := stats.NewTable("Data path (batched RMC pipeline, wall clock)",
		"operation", "bytes", "batch", "ops/sec", "p50 us", "p99 us", "allocs/op")
	for _, r := range d.Results {
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Bytes),
			fmt.Sprintf("%d", r.BatchSize),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.2f", r.P50Us),
			fmt.Sprintf("%.2f", r.P99Us),
			fmt.Sprintf("%.3f", r.AllocsPerOp))
	}
	return []*stats.Table{t}
}
