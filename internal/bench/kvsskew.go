package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sonuma/internal/kvs"
	"sonuma/internal/stats"
)

// This file measures the skew-aware serving stack as an ablation: the
// same YCSB-C zipfian (θ=0.99) read mix is driven against four fresh
// clusters that differ only in which features are on — primary-only
// reads (the baseline every earlier measurement used), replica-spread
// reads (power-of-two-choices over the replica set), the hot-key
// read-lease cache on top, and load-driven shard rebalancing on top of
// that. Ops/s and tail latency are reported per mode, plus the cache and
// rebalancer counters that explain them.

// kvsSkewTheta is the zipfian skew every mode runs under — the YCSB
// default, hot enough that the top key alone is a few percent of the
// load.
const kvsSkewTheta = 0.99

// kvsSkewHotKeysShare sets the per-client hot-key cache capacity in the
// cached modes as a fraction of the keyspace: keys/8 entries hold ~60% of
// the θ=0.99 zipfian mass, the knee of the hit-rate curve.
const kvsSkewHotKeysShare = 8

// KVSSkewStat is one ablation mode's measurement.
type KVSSkewStat struct {
	Mode      string `json:"mode"` // off | spread | spread+cache | spread+cache+rebal
	Spread    bool   `json:"spread"`
	Cache     bool   `json:"cache"`
	Rebalance bool   `json:"rebalance"`

	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`

	CacheHits          uint64  `json:"cache_hits"`
	CacheHitPct        float64 `json:"cache_hit_pct"` // hits / measured GETs
	CacheFills         uint64  `json:"cache_fills"`
	CacheProbes        uint64  `json:"cache_probes"`
	CacheInvalidations uint64  `json:"cache_invalidations"`
	Rebalances         uint64  `json:"rebalances"`

	// SpeedupVsOff is this mode's ops/s over the primary-only baseline.
	SpeedupVsOff float64 `json:"speedup_vs_off"`
}

// KVSSkewData is the full skew-ablation measurement set.
type KVSSkewData struct {
	GeneratedAt string        `json:"generated_at"`
	Seed        uint64        `json:"seed"`
	Nodes       int           `json:"nodes"`
	Shards      int           `json:"shards"`
	Replicas    int           `json:"replicas"`
	Keys        int           `json:"keys"`
	Theta       float64       `json:"theta"`
	Workload    string        `json:"workload"`
	HotKeys     int           `json:"hot_keys"` // cache capacity in cached modes
	Modes       []KVSSkewStat `json:"modes"`
}

// KVSSkew runs the skew ablation: four modes, each on a fresh cluster,
// same seed, same keys, same zipfian θ=0.99 read-only mix.
func KVSSkew(o Options) (KVSSkewData, error) {
	const (
		nodes    = 4
		shards   = 32
		replicas = 2
		buckets  = 512
		slotSize = 256
		getBurst = 8
	)
	keyCount := o.ops(4000, 800)
	rowOps := o.ops(60000, 12000)
	hotKeys := keyCount / kvsSkewHotKeysShare
	// One short lease for every mode: the cached modes probe shard
	// versions at lease/2 and the rebalancer aggregates every two leases,
	// so a bench-scale run spans several of each.
	lease := 30 * time.Millisecond

	d := KVSSkewData{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        o.seed(),
		Nodes:       nodes,
		Shards:      shards,
		Replicas:    replicas,
		Keys:        keyCount,
		Theta:       kvsSkewTheta,
		Workload:    "C",
		HotKeys:     hotKeys,
	}

	modes := []struct {
		name                 string
		spread, cache, rebal bool
	}{
		{"off", false, false, false},
		{"spread", true, false, false},
		{"spread+cache", true, true, false},
		{"spread+cache+rebal", true, true, true},
	}
	for _, m := range modes {
		cfg := kvs.Config{
			Shards: shards, Replicas: replicas, Buckets: buckets,
			SlotSize: slotSize, Lease: lease,
			ReadSpread: m.spread,
			Rebalance:  m.rebal,
		}
		if m.cache {
			cfg.HotKeys = hotKeys
		}
		svc, err := startKVS(nodes, keyCount, cfg, o.seed())
		if err != nil {
			return d, fmt.Errorf("skew mode %s: %w", m.name, err)
		}
		st, err := runSkewMode(svc, rowOps, getBurst)
		svc.close()
		if err != nil {
			return d, fmt.Errorf("skew mode %s: %w", m.name, err)
		}
		st.Mode, st.Spread, st.Cache, st.Rebalance = m.name, m.spread, m.cache, m.rebal
		if base := d.Modes; len(base) > 0 && base[0].OpsPerSec > 0 {
			st.SpeedupVsOff = st.OpsPerSec / base[0].OpsPerSec
		} else {
			st.SpeedupVsOff = 1
		}
		d.Modes = append(d.Modes, st)
	}
	return d, nil
}

// runSkewMode preloads, warms (sketch promotion, picker EWMAs, load
// counters), and measures one mode.
func runSkewMode(svc *kvsService, rowOps, getBurst int) (KVSSkewStat, error) {
	if err := svc.preload(64); err != nil {
		return KVSSkewStat{}, err
	}
	wc := kvsWorkloads[2] // C: 100% reads
	if _, err := svc.runMix(wc, "zipfian", 64, rowOps/4, getBurst); err != nil {
		return KVSSkewStat{}, fmt.Errorf("warmup: %w", err)
	}
	hits0, fills0, probes0, invals0 := svc.cacheTotals()
	mix, err := svc.runMix(wc, "zipfian", 64, rowOps, getBurst)
	if err != nil {
		return KVSSkewStat{}, err
	}
	hits, fills, probes, invals := svc.cacheTotals()
	var rebalances uint64
	for _, s := range svc.stores {
		rebalances += s.Stats().Rebalances
	}
	st := KVSSkewStat{
		Ops:                mix.Ops,
		OpsPerSec:          mix.OpsPerSec,
		P50Us:              mix.P50Us,
		P99Us:              mix.P99Us,
		CacheHits:          hits - hits0,
		CacheFills:         fills - fills0,
		CacheProbes:        probes - probes0,
		CacheInvalidations: invals - invals0,
		Rebalances:         rebalances,
	}
	if mix.Ops > 0 {
		st.CacheHitPct = 100 * float64(st.CacheHits) / float64(mix.Ops)
	}
	return st, nil
}

// cacheTotals sums the clients' hot-key cache counters.
func (svc *kvsService) cacheTotals() (hits, fills, probes, invals uint64) {
	for _, c := range svc.clients {
		cs := c.CacheStats()
		hits += cs.Hits
		fills += cs.Fills
		probes += cs.Probes
		invals += cs.Invalidations
	}
	return
}

// WriteJSON writes the ablation to path as indented JSON.
func (d KVSSkewData) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Tables renders the ablation as a paper-style text table.
func (d KVSSkewData) Tables() []*stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("KV skew ablation (workload %s, zipfian θ=%.2f; %d nodes, %d shards, %d replicas, %d keys, seed %d)",
			d.Workload, d.Theta, d.Nodes, d.Shards, d.Replicas, d.Keys, d.Seed),
		"mode", "ops/sec", "p50 us", "p99 us", "hit%", "fills", "probes", "invals", "rebalances", "vs off")
	for _, m := range d.Modes {
		t.AddRow(m.Mode,
			fmt.Sprintf("%.0f", m.OpsPerSec),
			fmt.Sprintf("%.2f", m.P50Us),
			fmt.Sprintf("%.2f", m.P99Us),
			fmt.Sprintf("%.1f", m.CacheHitPct),
			fmt.Sprintf("%d", m.CacheFills),
			fmt.Sprintf("%d", m.CacheProbes),
			fmt.Sprintf("%d", m.CacheInvalidations),
			fmt.Sprintf("%d", m.Rebalances),
			fmt.Sprintf("%.2fx", m.SpeedupVsOff))
	}
	return []*stats.Table{t}
}
