package bench

import (
	"fmt"
	"time"

	"sonuma"
)

// This file measures the development platform (the public API's emulated
// cluster) at wall-clock speed, the way §7 measures the Xen-based
// prototype. Absolute numbers depend on the host; EXPERIMENTS.md records
// them next to the paper's.

// emuPair builds a 2-node cluster with a context, QP and buffer on node 0
// and a populated segment on node 1.
type emuPair struct {
	cl  *sonuma.Cluster
	qp  *sonuma.QP
	buf *sonuma.Buffer
}

const emuSegSize = 4 << 20

func newEmuPair() (*emuPair, error) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		return nil, err
	}
	c0, err := cl.Node(0).OpenContext(1, emuSegSize)
	if err != nil {
		cl.Close()
		return nil, err
	}
	if _, err := cl.Node(1).OpenContext(1, emuSegSize); err != nil {
		cl.Close()
		return nil, err
	}
	qp, err := c0.NewQP(128)
	if err != nil {
		cl.Close()
		return nil, err
	}
	buf, err := c0.AllocBuffer(1 << 20)
	if err != nil {
		cl.Close()
		return nil, err
	}
	return &emuPair{cl: cl, qp: qp, buf: buf}, nil
}

func (p *emuPair) close() { p.cl.Close() }

// EmuReadLatencyUs measures synchronous remote read latency (µs/op).
func EmuReadLatencyUs(size, ops int) (float64, error) {
	p, err := newEmuPair()
	if err != nil {
		return 0, err
	}
	defer p.close()
	span := uint64(emuSegSize - size)
	// Warmup.
	for i := 0; i < ops/10+1; i++ {
		if err := p.qp.Read(1, 0, p.buf, 0, size); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	var off uint64
	for i := 0; i < ops; i++ {
		if err := p.qp.Read(1, off, p.buf, 0, size); err != nil {
			return 0, err
		}
		off = (off + uint64(size)) % span
	}
	return float64(time.Since(start).Microseconds()) / float64(ops), nil
}

// EmuReadBandwidthGbps measures asynchronous remote read throughput.
func EmuReadBandwidthGbps(size, ops int) (float64, error) {
	p, err := newEmuPair()
	if err != nil {
		return 0, err
	}
	defer p.close()
	span := uint64(emuSegSize - size)
	bufSpan := p.buf.Size() - size
	if bufSpan <= 0 {
		bufSpan = 1
	}
	start := time.Now()
	var off uint64
	for i := 0; i < ops; i++ {
		_, err := p.qp.ReadAsync(1, off, p.buf, int(off)%bufSpan, size, nil)
		if err != nil {
			return 0, err
		}
		off = (off + uint64(size)) % span
	}
	if err := p.qp.DrainCQ(); err != nil {
		return 0, err
	}
	secs := time.Since(start).Seconds()
	return float64(ops) * float64(size) * 8 / secs / 1e9, nil
}

// EmuAtomicLatencyUs measures synchronous remote fetch-and-add latency.
func EmuAtomicLatencyUs(ops int) (float64, error) {
	p, err := newEmuPair()
	if err != nil {
		return 0, err
	}
	defer p.close()
	for i := 0; i < ops/10+1; i++ {
		if _, err := p.qp.FetchAdd(1, 0, 1); err != nil {
			//lint:ignore seqlockbalance offset 0 is a plain benchmark counter, not a seqlock; the warmup and timed loops just share the word
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := p.qp.FetchAdd(1, 0, 1); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(ops), nil
}

// EmuIOPS measures asynchronous 64-byte remote operation rate (ops/s).
func EmuIOPS(ops int) (float64, error) {
	p, err := newEmuPair()
	if err != nil {
		return 0, err
	}
	defer p.close()
	start := time.Now()
	for i := 0; i < ops; i++ {
		off := uint64((i * 64) % (emuSegSize - 64))
		if _, err := p.qp.ReadAsync(1, off, p.buf, (i%1024)*64, 64, nil); err != nil {
			return 0, err
		}
	}
	if err := p.qp.DrainCQ(); err != nil {
		return 0, err
	}
	return float64(ops) / time.Since(start).Seconds(), nil
}

// emuMessengers builds a 2-node cluster with messengers configured for the
// given threshold (sonuma.ThresholdAlwaysPush / AlwaysPull / bytes).
func emuMessengers(threshold int) (*sonuma.Cluster, [2]*sonuma.Messenger, error) {
	var ms [2]*sonuma.Messenger
	cfg := sonuma.MessengerConfig{RingSlots: 256, Threshold: threshold, StagingSize: 64 << 10}
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		return nil, ms, err
	}
	segSize := sonuma.MessengerRegionSize(2, cfg) + 4096
	for i := 0; i < 2; i++ {
		ctx, err := cl.Node(i).OpenContext(1, segSize)
		if err != nil {
			cl.Close()
			return nil, ms, err
		}
		qp, err := ctx.NewQP(128)
		if err != nil {
			cl.Close()
			return nil, ms, err
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, cfg); err != nil {
			cl.Close()
			return nil, ms, err
		}
	}
	return cl, ms, nil
}

// EmuSendRecvLatencyUs measures half-duplex messaging latency (ping-pong
// RTT / 2) at one size/threshold.
func EmuSendRecvLatencyUs(size, threshold, rounds int) (float64, error) {
	cl, ms, err := emuMessengers(threshold)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	msg := make([]byte, size)
	errc := make(chan error, 1)
	go func() { // responder
		for i := 0; i < rounds; i++ {
			m, err := ms[1].Recv()
			if err != nil {
				errc <- err
				return
			}
			if err := ms[1].Send(0, m.Data); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := ms[0].Send(1, msg); err != nil {
			return 0, err
		}
		if _, err := ms[0].Recv(); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if err := <-errc; err != nil {
		return 0, err
	}
	return float64(elapsed.Microseconds()) / float64(rounds) / 2, nil
}

// EmuSendRecvBandwidthGbps measures streaming messaging throughput.
func EmuSendRecvBandwidthGbps(size, threshold, messages int) (float64, error) {
	cl, ms, err := emuMessengers(threshold)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	msg := make([]byte, size)
	done := make(chan error, 1)
	go func() { // consumer
		for i := 0; i < messages; i++ {
			if _, err := ms[1].Recv(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	start := time.Now()
	for i := 0; i < messages; i++ {
		if err := ms[0].Send(1, msg); err != nil {
			return 0, fmt.Errorf("send %d: %w", i, err)
		}
	}
	if err := <-done; err != nil {
		return 0, err
	}
	secs := time.Since(start).Seconds()
	return float64(messages) * float64(size) * 8 / secs / 1e9, nil
}
