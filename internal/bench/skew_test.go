package bench

import (
	"math"
	"testing"

	"sonuma/internal/stats"
)

// The skew ablation's whole premise is that the workload really is
// zipfian-skewed: the hot-key cache sizing (keys/8) and the expected
// speedup both follow from the θ=0.99 mass curve. This test pins the
// scrambled-zipfian key picker to that distribution — a chi-square-style
// goodness-of-fit over every key index against the exact per-index
// expectation (zipf pmf pushed through the scramble, collisions merged),
// plus the headline number: the hottest key's observed share versus
// stats.ZipfTopMass.

// scramble mirrors keyPicker.next's rank→index finalizer (splitmix64).
// Duplicated here on purpose: if the picker's scramble changes, the
// expected distribution below silently stops matching and this test
// fails, which is exactly the alarm we want.
func scramble(rank, n int) int {
	h := uint64(rank)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return int(h % uint64(n))
}

func TestScrambledZipfianDistribution(t *testing.T) {
	const (
		n     = 4000   // keyspace of the full-scale skew ablation
		s     = 0.99   // kvsSkewTheta
		draws = 400000 // ~100 expected hits per uniform cell; tail cells ≥10
	)

	// Exact expected mass per key index: rank r has pmf 1/((r+1)^s · H),
	// and lands on index scramble(r); distinct ranks can collide on one
	// index, so masses add.
	expected := make([]float64, n)
	var h float64
	for r := 0; r < n; r++ {
		h += 1.0 / math.Pow(float64(r+1), s)
	}
	for r := 0; r < n; r++ {
		expected[scramble(r, n)] += 1.0 / (math.Pow(float64(r+1), s) * h)
	}

	observed := make([]int, n)
	p := newPicker("zipfian", n, 0xD15C0)
	for i := 0; i < draws; i++ {
		idx := p.next()
		if idx < 0 || idx >= n {
			t.Fatalf("picker returned %d outside [0, %d)", idx, n)
		}
		observed[idx]++
	}

	// Chi-square statistic over all n cells. With the expected counts
	// ranging from ~12 (tail) to ~46k (the hottest key) the statistic is
	// ~χ²(n-1): mean n-1, sd √(2(n-1))≈89. A +6σ bound is loose enough
	// to never flake on a fixed seed and tight enough that a picker bug
	// (wrong exponent, broken scramble, off-by-one rank) blows through it
	// by orders of magnitude.
	chi2, cells := 0.0, 0
	for i := 0; i < n; i++ {
		e := expected[i] * draws
		if e == 0 {
			// A collision elsewhere left this index with no rank at all:
			// the picker must never produce it.
			if observed[i] != 0 {
				t.Fatalf("index %d drawn %d times but no rank scrambles to it", i, observed[i])
			}
			continue
		}
		d := float64(observed[i]) - e
		chi2 += d * d / e
		cells++
	}
	bound := float64(cells-1) + 6*math.Sqrt(2*float64(cells-1))
	if chi2 > bound {
		t.Fatalf("chi-square %.0f exceeds %.0f: picker does not match scrambled zipf(%.2f) over %d keys", chi2, bound, s, n)
	}

	// Headline skew: the hottest key's share must match ZipfTopMass(n,s,1)
	// (≈11% of all traffic on one key of 4000). The scramble can merge
	// another rank's mass into the same index, so compare against the
	// scramble-aware expectation but sanity-bound it by the analytic one.
	hotIdx, hotMass := 0, 0.0
	for i, e := range expected {
		if e > hotMass {
			hotIdx, hotMass = i, e
		}
	}
	top1 := stats.ZipfTopMass(n, s, 1)
	if hotMass < top1 {
		t.Fatalf("scrambled top index mass %.4f below analytic top-1 mass %.4f (scramble lost mass?)", hotMass, top1)
	}
	got := float64(observed[hotIdx]) / draws
	if got < 0.8*hotMass || got > 1.2*hotMass {
		t.Fatalf("hottest key drew %.4f of traffic, expected %.4f ±20%% (ZipfTopMass(1)=%.4f)", got, hotMass, top1)
	}
	t.Logf("chi2=%.0f (bound %.0f), hottest key share %.4f vs expected %.4f, analytic top-1 %.4f",
		chi2, bound, got, hotMass, top1)
}
