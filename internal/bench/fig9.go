package bench

import (
	"sonuma"
	"sonuma/internal/graph"
	"sonuma/internal/prbsp"
	"sonuma/internal/simhw"
	"sonuma/internal/stats"
)

// Fig9Data reproduces Figure 9: PageRank speedup relative to one thread,
// for SHM(pthreads), soNUMA(bulk) and soNUMA(fine-grain) — on the
// simulated hardware (left, 2/4/8 nodes, one superstep) and on the
// development platform (right, 2/4/8/16 nodes, several supersteps).
type Fig9Data struct {
	SimNodes   []int
	SimSHM     []float64
	SimBulk    []float64
	SimFine    []float64
	EmuNodes   []int
	EmuSHM     []float64
	EmuBulk    []float64
	EmuFine    []float64
	EmuErr     error
	GraphEdges int
	GraphVerts int
}

// Fig9 generates the graph, partitions it per node count, and measures all
// variants.
func Fig9(o Options) Fig9Data {
	d := Fig9Data{
		SimNodes: []int{2, 4, 8},
		EmuNodes: []int{2, 4, 8, 16},
	}
	// Simulated hardware: one superstep on the cycle model.
	simVerts := o.ops(100000, 12000)
	gSim := graph.GenPowerLaw(simVerts, 8, 1.8, 42)
	p := simhw.DefaultParams()
	cfg := simhw.DefaultPRConfig()
	base := simhw.PageRankSHM(p, cfg, gSim, graph.RandomPartition(gSim, 1, 7), 1)
	for _, n := range d.SimNodes {
		pt := graph.RandomPartition(gSim, n, 7)
		d.SimSHM = append(d.SimSHM, base.SuperstepS/simhw.PageRankSHM(p, cfg, gSim, pt, n).SuperstepS)
		d.SimBulk = append(d.SimBulk, base.SuperstepS/simhw.PageRankBulk(p, cfg, gSim, pt).SuperstepS)
		d.SimFine = append(d.SimFine, base.SuperstepS/simhw.PageRankFineGrain(p, cfg, gSim, pt).SuperstepS)
	}

	// Development platform: wall clock over the public API. WorkPerEdge
	// injects the DRAM-bound per-edge cost of the paper's testbed
	// (~400ns on their VM-era Opteron under contention) so the
	// compute-to-communication ratio matches the paper's workload rather
	// than Go's in-cache traversal speed; EXPERIMENTS.md documents this
	// substitution.
	// Edge density matches the Twitter subset's (≈24-35 edges/vertex):
	// the bulk variant's shuffle is per-vertex work while compute is
	// per-edge, so density sets their ratio.
	emuVerts := o.ops(50000, 6000)
	eopt := prbsp.Options{Supersteps: o.ops(3, 2), WorkPerEdge: 150}
	gEmu := graph.GenPowerLaw(emuVerts, 24, 1.8, 42)
	eopt.CtxID = 19
	ebase := prbsp.RunSHMOpts(gEmu, graph.RandomPartition(gEmu, 1, 7), eopt)
	for _, n := range d.EmuNodes {
		pt := graph.RandomPartition(gEmu, n, 7)
		d.EmuSHM = append(d.EmuSHM, ebase.Elapsed.Seconds()/prbsp.RunSHMOpts(gEmu, pt, eopt).Elapsed.Seconds())
		cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
		if err != nil {
			d.EmuErr = err
			d.EmuBulk = append(d.EmuBulk, 0)
			d.EmuFine = append(d.EmuFine, 0)
			continue
		}
		eopt.CtxID = 20
		bulk, err := prbsp.RunOpts(cl, gEmu, pt, prbsp.Bulk, eopt)
		if err != nil {
			d.EmuErr = err
		}
		eopt.CtxID = 21
		fine, err := prbsp.RunOpts(cl, gEmu, pt, prbsp.FineGrain, eopt)
		if err != nil {
			d.EmuErr = err
		}
		cl.Close()
		d.EmuBulk = append(d.EmuBulk, speedup(ebase.Elapsed.Seconds(), bulk.Elapsed.Seconds()))
		d.EmuFine = append(d.EmuFine, speedup(ebase.Elapsed.Seconds(), fine.Elapsed.Seconds()))
	}
	d.GraphEdges = gSim.NumEdges()
	d.GraphVerts = gSim.N
	return d
}

func speedup(base, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return base / t
}

// Tables implements Experiment.
func (d Fig9Data) Tables() []*stats.Table {
	a := stats.NewTable("Figure 9 (left): PageRank speedup vs 1 thread (sim'd HW, 1 superstep)",
		"nodes", "SHM(pthreads)", "soNUMA(bulk)", "soNUMA(fine-grain)")
	for i, n := range d.SimNodes {
		a.AddRow(n, d.SimSHM[i], d.SimBulk[i], d.SimFine[i])
	}
	b := stats.NewTable("Figure 9 (right): PageRank speedup vs 1 thread (development platform, wall clock)",
		"nodes", "SHM(pthreads)", "soNUMA(bulk)", "soNUMA(fine-grain)")
	for i, n := range d.EmuNodes {
		b.AddRow(n, d.EmuSHM[i], d.EmuBulk[i], d.EmuFine[i])
	}
	return []*stats.Table{a, b}
}
