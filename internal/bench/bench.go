// Package bench regenerates every table and figure of the paper's
// evaluation (§7): each experiment has a function returning the measured
// series plus formatted text tables, consumed by the root-level benchmarks
// (bench_test.go) and the sonuma-bench command.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured numbers
// are recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"

	"sonuma/internal/stats"
)

// Options tune experiment cost. Quick mode shrinks op counts and sweeps so
// the full suite stays test-friendly; Full mode is for the CLI.
type Options struct {
	Quick bool
	// Seed pins every randomized choice an experiment makes (key pickers,
	// operation mixes, fault schedules) so a run — in particular a failed
	// fault-injection run — is reproducible bit for bit. Zero selects the
	// fixed default seed; harnesses print the effective seed with their
	// results.
	Seed uint64
}

// ops picks an operation count by mode.
func (o Options) ops(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// seed resolves the effective seed (zero = the fixed default).
func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// RequestSizes is the §7.2/§7.3 sweep: 64 B to 8 KB in powers of two.
var RequestSizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// smallSizes trims the sweep for quick mode.
func (o Options) sizes() []int {
	if o.Quick {
		return []int{64, 512, 4096, 8192}
	}
	return RequestSizes
}

// Experiment is implemented by every reproduced table/figure.
type Experiment interface {
	// Tables renders the result as paper-style text tables.
	Tables() []*stats.Table
}

// Print writes an experiment's tables to w.
func Print(w io.Writer, e Experiment) {
	for _, t := range e.Tables() {
		fmt.Fprintln(w, t.String())
	}
}
