package bench

import (
	"sonuma/internal/rdma"
	"sonuma/internal/simhw"
	"sonuma/internal/stats"
)

// Table2Data reproduces Table 2: soNUMA (development platform and
// simulated hardware) against the InfiniBand/RDMA baseline across four
// metrics — peak bandwidth, read round-trip, fetch-and-add latency, and
// per-core operation rate.
type Table2Data struct {
	// Development platform (wall clock).
	EmuMaxGbps, EmuReadRTTUs, EmuFetchAddUs, EmuMops float64
	EmuErr                                           error
	// Simulated hardware.
	SimMaxGbps, SimReadRTTUs, SimFetchAddUs, SimMops float64
	// RDMA/InfiniBand model.
	RDMAMaxGbps, RDMAReadRTTUs, RDMAFetchAddUs, RDMAMops float64
	RDMAQPs                                              int
}

// Table2 measures all three columns.
func Table2(o Options) Table2Data {
	p := simhw.DefaultParams()
	d := Table2Data{}

	bw := simhw.ReadBandwidth(p, 8192, false, o.ops(8<<20, 2<<20))
	d.SimMaxGbps = bw.Gbps
	d.SimReadRTTUs = simhw.ReadLatency(p, 64, false, o.ops(200, 60)).MeanNs / 1e3
	d.SimFetchAddUs = simhw.AtomicLatency(p, o.ops(200, 60)).MeanNs / 1e3
	d.SimMops = simhw.IOPS(p, o.ops(60000, 10000)) / 1e6

	hca := rdma.ConnectX3()
	d.RDMAMaxGbps = hca.MaxBandwidthGbps()
	d.RDMAReadRTTUs = hca.ReadRTT(64).Microseconds()
	d.RDMAFetchAddUs = hca.AtomicRTT().Microseconds()
	d.RDMAQPs = 4
	d.RDMAMops = hca.IOPS(d.RDMAQPs) / 1e6

	if v, err := EmuReadBandwidthGbps(8192, o.ops(20000, 3000)); err != nil {
		d.EmuErr = err
	} else {
		d.EmuMaxGbps = v
	}
	if v, err := EmuReadLatencyUs(64, o.ops(3000, 500)); err != nil {
		d.EmuErr = err
	} else {
		d.EmuReadRTTUs = v
	}
	if v, err := EmuAtomicLatencyUs(o.ops(3000, 500)); err != nil {
		d.EmuErr = err
	} else {
		d.EmuFetchAddUs = v
	}
	if v, err := EmuIOPS(o.ops(100000, 20000)); err != nil {
		d.EmuErr = err
	} else {
		d.EmuMops = v / 1e6
	}
	return d
}

// Tables implements Experiment.
func (d Table2Data) Tables() []*stats.Table {
	t := stats.NewTable("Table 2: soNUMA vs InfiniBand/RDMA",
		"metric", "soNUMA dev plat", "soNUMA sim'd HW", "RDMA/IB model", "paper (dev/sim/IB)")
	t.AddRow("Max BW (Gbps)", d.EmuMaxGbps, d.SimMaxGbps, d.RDMAMaxGbps, "1.8 / 77 / 50")
	t.AddRow("Read RTT (us)", d.EmuReadRTTUs, d.SimReadRTTUs, d.RDMAReadRTTUs, "1.5 / 0.3 / 1.19")
	t.AddRow("Fetch-and-add (us)", d.EmuFetchAddUs, d.SimFetchAddUs, d.RDMAFetchAddUs, "1.5 / 0.3 / 1.15")
	t.AddRow("IOPS (Mops/s)", d.EmuMops, d.SimMops, d.RDMAMops, "1.97 / 10.9 / 35@4cores")
	return []*stats.Table{t}
}
