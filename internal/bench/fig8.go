package bench

import (
	"sonuma"
	"sonuma/internal/simhw"
	"sonuma/internal/stats"
)

// Fig8Data reproduces Figure 8: send/receive performance of the software
// messaging library (§5.3, §7.3) under three threshold settings — always
// push (∞), always pull (0), and the tuned boundary.
type Fig8Data struct {
	Sizes []int
	// Simulated hardware, threshold = ∞ / 0 / 256B
	PushLatNs, PullLatNs, ComboLatNs []float64
	PushGbps, PullGbps, ComboGbps    []float64
	// Development platform (threshold 1KB, as the paper tunes for it)
	EmuLatUs  []float64
	EmuGbps   []float64
	EmuErr    error
	Threshold int
}

// SimThreshold is the tuned boundary on simulated hardware (§7.3: 256 B);
// EmuThreshold is the development platform's (1 KB).
const (
	SimThreshold = 256
	EmuThreshold = 1024
)

// Fig8 runs the latency and streaming sweeps.
func Fig8(o Options) Fig8Data {
	p := simhw.DefaultParams()
	d := Fig8Data{Sizes: o.sizes(), Threshold: SimThreshold}
	rounds := o.ops(60, 25)
	msgs := o.ops(300, 80)
	for _, s := range d.Sizes {
		d.PushLatNs = append(d.PushLatNs, simhw.SendRecvLatency(p, s, -1, rounds).MeanNs)
		d.PullLatNs = append(d.PullLatNs, simhw.SendRecvLatency(p, s, 0, rounds).MeanNs)
		d.ComboLatNs = append(d.ComboLatNs, simhw.SendRecvLatency(p, s, SimThreshold, rounds).MeanNs)
		d.PushGbps = append(d.PushGbps, simhw.SendRecvBandwidth(p, s, -1, msgs).Gbps)
		d.PullGbps = append(d.PullGbps, simhw.SendRecvBandwidth(p, s, 0, msgs).Gbps)
		d.ComboGbps = append(d.ComboGbps, simhw.SendRecvBandwidth(p, s, SimThreshold, msgs).Gbps)

		lat, err := EmuSendRecvLatencyUs(s, EmuThreshold, o.ops(400, 100))
		if err != nil {
			d.EmuErr = err
		}
		bw, err := EmuSendRecvBandwidthGbps(s, EmuThreshold, o.ops(2000, 400))
		if err != nil {
			d.EmuErr = err
		}
		d.EmuLatUs = append(d.EmuLatUs, lat)
		d.EmuGbps = append(d.EmuGbps, bw)
	}
	return d
}

// Tables implements Experiment.
func (d Fig8Data) Tables() []*stats.Table {
	a := stats.NewTable("Figure 8a: send/receive half-duplex latency (sim'd HW)",
		"msg size", "push=inf (ns)", "pull=0 (ns)", "threshold 256B (ns)")
	b := stats.NewTable("Figure 8b: send/receive bandwidth (sim'd HW)",
		"msg size", "push (Gbps)", "pull (Gbps)", "threshold 256B (Gbps)")
	c := stats.NewTable("Figure 8c: send/receive on development platform (threshold 1KB, wall clock)",
		"msg size", "latency (us)", "bandwidth (Gbps)")
	for i, s := range d.Sizes {
		sz := stats.FormatBytes(s)
		a.AddRow(sz, d.PushLatNs[i], d.PullLatNs[i], d.ComboLatNs[i])
		b.AddRow(sz, d.PushGbps[i], d.PullGbps[i], d.ComboGbps[i])
		c.AddRow(sz, d.EmuLatUs[i], d.EmuGbps[i])
	}
	return []*stats.Table{a, b, c}
}

// ensure the root package's threshold sentinels stay aligned with the
// messenger's (compile-time check only).
var _ = sonuma.ThresholdAlwaysPush
