package bench

import (
	"sonuma/internal/netstack"
	"sonuma/internal/stats"
)

// Fig1Data reproduces Figure 1: the netpipe benchmark between two
// commodity microservers over the kernel TCP/IP stack — the motivating
// baseline whose latency soNUMA attacks.
type Fig1Data struct {
	Points []netstack.Point
}

// Fig1 runs the netpipe sweep on the deep-stack model.
func Fig1(o Options) Fig1Data {
	sizes := []int{1, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
	if o.Quick {
		sizes = []int{1, 1024, 65536, 1048576}
	}
	return Fig1Data{Points: netstack.Sweep(netstack.CalxedaTCP(), sizes)}
}

// Tables implements Experiment.
func (d Fig1Data) Tables() []*stats.Table {
	t := stats.NewTable(
		"Figure 1: netpipe on commodity microservers (modeled TCP/IP stack, 10Gbps fabric)",
		"request size", "latency (us)", "bandwidth (Gbps)")
	for _, p := range d.Points {
		t.AddRow(stats.FormatBytes(p.Size), p.LatencyUs, p.Gbps)
	}
	return []*stats.Table{t}
}

// SmallMsgLatencyUs reports the small-message latency (the paper: "in
// excess of 40µs").
func (d Fig1Data) SmallMsgLatencyUs() float64 { return d.Points[0].LatencyUs }

// PeakGbps reports the best sustained bandwidth (the paper: "under 2 Gbps").
func (d Fig1Data) PeakGbps() float64 {
	best := 0.0
	for _, p := range d.Points {
		if p.Gbps > best {
			best = p.Gbps
		}
	}
	return best
}
