package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sonuma"
	"sonuma/internal/kvs"
	"sonuma/internal/stats"
)

// This file measures the sharded KV service under a YCSB-style mixed load:
// the classic A/B/C read-write mixes over zipfian and uniform key
// distributions, plus a failover run that cuts every fabric link of a shard
// primary mid-load. The headline claim under test is the paper's one-sided
// story (§8): GETs are remote reads of version-stamped slots, so a
// read-mostly mix completes with zero server-side handler invocations
// attributable to GETs — measured from the stores' own message counters,
// not asserted.

// kvsWorkload is one YCSB-style mix.
type kvsWorkload struct {
	name    string
	readPct int // percentage of operations that are GETs
}

// The YCSB core mixes: A = update-heavy, B = read-mostly, C = read-only.
var kvsWorkloads = []kvsWorkload{
	{name: "A", readPct: 50},
	{name: "B", readPct: 95},
	{name: "C", readPct: 100},
}

// KVSStat is one measured workload row.
type KVSStat struct {
	Workload  string  `json:"workload"`   // YCSB mix name (A/B/C)
	Dist      string  `json:"dist"`       // key distribution (zipfian/uniform)
	ReadPct   int     `json:"read_pct"`   // GET share of the mix
	ValueSize int     `json:"value_size"` // PUT value bytes
	GetBurst  int     `json:"get_burst"`  // GETs batched per MultiGet
	Ops       int     `json:"ops"`        // operations completed
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
	// ServerMsgsHandled is the total messenger messages processed by all
	// store serve loops during the row (PUT forwards and their acks).
	ServerMsgsHandled uint64 `json:"server_msgs_handled"`
	// GetHandlerInvocations is the number of those messages NOT accounted
	// for by PUT routing — i.e. server-CPU handler invocations caused by
	// GETs. The one-sided data path keeps this at exactly 0.
	GetHandlerInvocations int64 `json:"get_handler_invocations"`
}

// KVSFailoverStat records the kill-a-primary run.
type KVSFailoverStat struct {
	Workload   string  `json:"workload"`
	Dist       string  `json:"dist"`
	FailedNode int     `json:"failed_node"` // primary whose links were cut mid-run
	Ops        int     `json:"ops"`         // operations attempted
	Completed  int     `json:"completed"`   // operations that eventually succeeded
	Retried    int     `json:"retried"`     // per-op retries spent on failover
	Promotions uint64  `json:"promotions"`  // shard leaderships moved by watchers
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// KVSHealStat records the kill → heal → converge run: a primary's links
// are all cut at one third of the load and restored at two thirds, the mix
// keeps running across the whole outage, and the run passes only if every
// operation eventually completes, the victim is repaired and re-admitted
// everywhere, the rejoined replica serves one-sided GETs again, and all
// replicas of every key are byte-identical afterwards.
type KVSHealStat struct {
	Workload   string `json:"workload"`
	Dist       string `json:"dist"`
	FailedNode int    `json:"failed_node"` // primary cut at 1/3, healed at 2/3
	Ops        int    `json:"ops"`         // operations attempted
	Completed  int    `json:"completed"`   // operations that eventually succeeded
	Retried    int    `json:"retried"`     // per-op retries spent on the outage
	// RepairMs measures RestoreLink → every store (victim included)
	// publishing a clear down view: detection, anti-entropy streaming,
	// and re-admission.
	RepairMs      float64 `json:"repair_ms"`
	RepairedSlots uint64  `json:"repaired_slots"` // slot diffs streamed by repairers
	RepairBytes   uint64  `json:"repair_bytes"`   // messenger bytes spent on diffs
	Rejoins       uint64  `json:"rejoins"`        // peer re-admissions recorded
	// VictimServes is true when the rejoined replica answered a direct
	// one-sided GET with the current value after convergence.
	VictimServes bool `json:"victim_serves_gets"`
	// ReplicasIdentical is true when every replica of every key returned
	// byte-identical values after convergence.
	ReplicasIdentical bool    `json:"replicas_identical"`
	OpsPerSec         float64 `json:"ops_per_sec"`
}

// KVSAsymStat records the asymmetric-partition run: a busy shard leader is
// one-way partitioned (it can be written to but cannot send — so lease
// renewals and replication die while its colocated clients keep it
// absorbing writes), the coordinator's epoch bump demotes and fences it,
// the promoted replica serves the winning epoch, and after the heal the
// run audits that repair's (epoch, version) order rolled the stale
// absorbed writes back: every contested key converges to the winning
// epoch's last acknowledged value on byte-identical replicas.
type KVSAsymStat struct {
	FailedNode  int `json:"failed_node"` // the one-way-partitioned stale leader
	Coordinator int `json:"coordinator"`
	Contested   int `json:"contested_keys"` // keys written by BOTH sides
	// Absorbed counts writes the stale leader acknowledged during the
	// partition while its lease was still valid — these push its version
	// counts ahead of the winning side, the case version-count
	// anti-entropy could never settle.
	Absorbed int `json:"absorbed_writes"`
	// FencedErrors counts stale-side writes that surfaced ErrFenced after
	// the lease lapsed (errors, never silent drops).
	FencedErrors int    `json:"fenced_errors"`
	EpochStart   uint64 `json:"epoch_start"`
	EpochEnd     uint64 `json:"epoch_end"` // after demote + repair + re-admit
	// WinnerPreserved is true when every contested key ended at the
	// winning epoch's last acknowledged value on every replica.
	WinnerPreserved   bool    `json:"winner_writes_preserved"`
	ReplicasIdentical bool    `json:"replicas_identical"`
	ConvergeMs        float64 `json:"converge_ms"` // heal → clean epoch everywhere
}

// KVSCoordStat records one coordinator-kill run: the node holding the
// epoch authority is taken out mid-load (fully partitioned, or "node
// failed" — permanently cut, never healed), a succession member must
// activate a new term and epoch with no operator input, and the writes
// that parked or fenced during the authority blackout must complete under
// the successor. FailoverMs is the headline number: cut → first write
// acknowledged into a shard the dead coordinator led.
type KVSCoordStat struct {
	// Mode is "partition" (cut, failover, heal, demotion audited) or
	// "node-fail" (cut for the rest of the run; survivors audited).
	Mode            string `json:"mode"`
	SeedCoordinator int    `json:"seed_coordinator"`
	Successor       int    `json:"successor"`
	TermStart       uint64 `json:"term_start"`
	TermEnd         uint64 `json:"term_end"`
	EpochStart      uint64 `json:"epoch_start"`
	EpochEnd        uint64 `json:"epoch_end"`
	// FailoverMs: link cut → first PUT acknowledged into a shard the
	// seed coordinator led (parked through the succession).
	FailoverMs float64 `json:"failover_ms"`
	// StalledWrites counts PUT attempts that surfaced a definite error
	// (ErrFenced or unroutable) while the authority was down — stalls are
	// errors, never hangs; CompletedAfter counts the writes that then
	// landed under the successor's term.
	StalledWrites  int `json:"stalled_writes"`
	CompletedAfter int `json:"completed_after_failover"`
	// StaleMsMax is the largest config-slot staleness any survivor
	// reported during the blackout (the failover trigger's input).
	StaleMsMax        float64 `json:"slot_stale_ms_max"`
	ExCoordDemoted    bool    `json:"ex_coordinator_demoted"`    // partition mode only
	ReplicasIdentical bool    `json:"replicas_identical"`        // audited set
	ConvergeMs        float64 `json:"converge_ms,omitempty"`     // partition mode: heal → clean (term, epoch)
	Takeovers         uint64  `json:"takeovers"`                 // terms activated by successors
	CoordDemotions    uint64  `json:"coordinator_demotions"`     // observed self-demotions
	FencedWrites      uint64  `json:"fenced_writes_cluster_sum"` // store counters, cluster-wide
}

// KVSData is the full measurement set of the kvs experiment.
type KVSData struct {
	GeneratedAt string           `json:"generated_at"`
	Seed        uint64           `json:"seed"` // reproduces every randomized choice
	Nodes       int              `json:"nodes"`
	Shards      int              `json:"shards"`
	Replicas    int              `json:"replicas"`
	Keys        int              `json:"keys"`
	Results     []KVSStat        `json:"results"`
	Failover    *KVSFailoverStat `json:"failover,omitempty"`
	Heal        *KVSHealStat     `json:"heal,omitempty"`
	Asym        *KVSAsymStat     `json:"asym,omitempty"`
	CoordFail   []KVSCoordStat   `json:"coord_fail,omitempty"`
}

// ---------------------------------------------------------------------------
// Deterministic key selection (stats.RNG/Zipf, so runs are reproducible)

// keyPicker draws key indices for one client goroutine: uniform, or
// zipfian with the YCSB constant s=0.99 plus YCSB's scramble so the
// popular ranks scatter across the shard space instead of clustering.
type keyPicker struct {
	rng  *stats.RNG
	zipf *stats.Zipf // nil for uniform
	n    int
}

func newPicker(dist string, n int, seed uint64) *keyPicker {
	p := &keyPicker{rng: stats.NewRNG(seed), n: n}
	if dist == "zipfian" {
		p.zipf = stats.NewZipf(p.rng, n, 0.99)
	}
	return p
}

func (p *keyPicker) next() int {
	if p.zipf == nil {
		return p.rng.Intn(p.n)
	}
	// Scrambled zipfian: finalize the rank into a stable pseudo-random
	// key index (splitmix64 finalizer, as in ring placement).
	h := uint64(p.zipf.Next())
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return int(h % uint64(p.n))
}

// ---------------------------------------------------------------------------
// Harness

// kvsService is the cluster under test: one store member and one client per
// node.
type kvsService struct {
	cluster *sonuma.Cluster
	stores  []*kvs.Store
	clients []*kvs.Client
	keys    [][]byte
	n       int
	seed    uint64
}

func startKVS(nodes, keyCount int, cfg kvs.Config, seed uint64) (*kvsService, error) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: nodes})
	if err != nil {
		return nil, err
	}
	svc := &kvsService{cluster: cl, n: nodes, seed: seed}
	for i := 0; i < nodes; i++ {
		ctx, err := cl.Node(i).OpenContext(3, cfg.SegmentSize(nodes)+4096)
		if err != nil {
			cl.Close()
			return nil, err
		}
		s, err := kvs.Open(ctx, cfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		svc.stores = append(svc.stores, s)
	}
	// Clients attach after every member is open: NewClient validates the
	// geometry with a one-sided read of a peer's header.
	for _, s := range svc.stores {
		c, err := s.NewClient()
		if err != nil {
			cl.Close()
			return nil, err
		}
		svc.clients = append(svc.clients, c)
	}
	svc.keys = make([][]byte, keyCount)
	for i := range svc.keys {
		svc.keys[i] = []byte(fmt.Sprintf("user%08d", i))
	}
	return svc, nil
}

func (svc *kvsService) close() {
	for _, s := range svc.stores {
		s.Close()
	}
	svc.cluster.Close()
}

// preload writes every key once through the service (replicated PUTs).
func (svc *kvsService) preload(valueSize int) error {
	val := benchValue(valueSize, 0)
	for i, k := range svc.keys {
		if err := svc.clients[i%svc.n].Put(k, val); err != nil {
			return fmt.Errorf("preload %q: %w", k, err)
		}
	}
	return nil
}

// benchValue builds a deterministic value of the given size.
func benchValue(size, gen int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte('a' + (gen+i)%26)
	}
	return v
}

// msgsHandled sums the serve-loop message counters across all stores.
func (svc *kvsService) msgsHandled() uint64 {
	var total uint64
	for _, s := range svc.stores {
		total += s.Stats().MsgsHandled
	}
	return total
}

// putsForwarded sums remote PUT forwards across all stores.
func (svc *kvsService) putsForwarded() uint64 {
	var total uint64
	for _, s := range svc.stores {
		total += s.Stats().PutsForwarded
	}
	return total
}

// runMix drives one workload row: every node's client runs its share of the
// mix, batching GETs into MultiGet bursts of getBurst keys.
func (svc *kvsService) runMix(w kvsWorkload, dist string, valueSize, totalOps, getBurst int) (KVSStat, error) {
	perClient := totalOps / svc.n
	latencies := make([][]float64, svc.n)
	errs := make([]error, svc.n)
	msgs0 := svc.msgsHandled()
	fwd0 := svc.putsForwarded()

	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < svc.n; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			latencies[ci], errs[ci] = svc.clientMix(ci, w, dist, valueSize, perClient, getBurst)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return KVSStat{}, err
		}
	}
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	ops := len(all)
	msgs := svc.msgsHandled() - msgs0
	fwd := svc.putsForwarded() - fwd0
	return KVSStat{
		Workload:  w.name,
		Dist:      dist,
		ReadPct:   w.readPct,
		ValueSize: valueSize,
		GetBurst:  getBurst,
		Ops:       ops,
		OpsPerSec: float64(ops) / elapsed,
		P50Us:     all[ops/2],
		P99Us:     all[ops*99/100],
		// Every forwarded PUT costs exactly two handler invocations (the
		// PUT message at the primary, its ack at the origin); whatever
		// remains would have to come from GETs.
		ServerMsgsHandled:     msgs,
		GetHandlerInvocations: int64(msgs) - 2*int64(fwd),
	}, nil
}

// clientMix is one client goroutine's operation loop.
func (svc *kvsService) clientMix(ci int, w kvsWorkload, dist string, valueSize, ops, getBurst int) ([]float64, error) {
	client := svc.clients[ci]
	picker := newPicker(dist, len(svc.keys), svc.seed^(uint64(ci)*0x1000+7))
	opRNG := stats.NewRNG(svc.seed + uint64(ci) + 0x5eed)
	lat := make([]float64, 0, ops)
	burst := make([][]byte, 0, getBurst)

	flush := func() error {
		if len(burst) == 0 {
			return nil
		}
		t0 := time.Now()
		_, gerrs := client.MultiGet(burst)
		per := float64(time.Since(t0).Nanoseconds()) / 1e3 / float64(len(burst))
		for _, err := range gerrs {
			if err != nil && !errors.Is(err, kvs.ErrNotFound) {
				return err
			}
			lat = append(lat, per)
		}
		burst = burst[:0]
		return nil
	}

	gen := 0
	for i := 0; i < ops; i++ {
		key := svc.keys[picker.next()]
		if opRNG.Intn(100) < w.readPct {
			burst = append(burst, key)
			if len(burst) == getBurst {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		gen++
		t0 := time.Now()
		if err := client.Put(key, benchValue(valueSize, gen)); err != nil {
			return nil, err
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return lat, nil
}

// busiestPrimary picks the non-zero node leading the most shards — the
// most disruptive victim for fault runs.
func (svc *kvsService) busiestPrimary() int {
	ring := svc.stores[0].Ring()
	leads := make([]int, svc.n)
	for s := 0; s < ring.Shards(); s++ {
		leads[ring.Owners(s)[0]]++
	}
	victim := 1
	for n := 1; n < svc.n; n++ {
		if leads[n] > leads[victim] {
			victim = n
		}
	}
	return victim
}

// runFailover drives a read-mostly zipfian mix and cuts every link of a
// busy primary at the halfway mark. Clients retry failed operations until
// they complete; the run passes only if every operation eventually does.
func (svc *kvsService) runFailover(totalOps, getBurst, valueSize int) (*KVSFailoverStat, error) {
	victim := svc.busiestPrimary()

	// Clients run everywhere except the victim.
	workers := make([]int, 0, svc.n-1)
	for i := 0; i < svc.n; i++ {
		if i != victim {
			workers = append(workers, i)
		}
	}
	perClient := totalOps / len(workers)
	var completed, retried atomic.Int64
	half := int64(perClient*len(workers)) / 2
	tripwire := make(chan struct{})
	var once sync.Once

	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	start := time.Now()
	for wi, ci := range workers {
		wi, ci := wi, ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := svc.clients[ci]
			picker := newPicker("zipfian", len(svc.keys), svc.seed^(uint64(ci)*31+99))
			opRNG := stats.NewRNG(svc.seed + uint64(ci) ^ 0xfa11)
			gen := 0
			for i := 0; i < perClient; i++ {
				key := svc.keys[picker.next()]
				isRead := opRNG.Intn(100) < 95
				var lastErr error
				ok := false
				for attempt := 0; attempt < 200; attempt++ {
					if isRead {
						_, err := client.Get(key)
						if err == nil || errors.Is(err, kvs.ErrNotFound) {
							ok = true
						} else {
							lastErr = err
						}
					} else {
						gen++
						if err := client.Put(key, benchValue(valueSize, gen)); err == nil {
							ok = true
						} else {
							lastErr = err
						}
					}
					if ok {
						break
					}
					retried.Add(1)
				}
				if !ok {
					errs[wi] = fmt.Errorf("op on %q never completed after failover: %w", key, lastErr)
					return
				}
				if completed.Add(1) == half {
					once.Do(func() { close(tripwire) })
				}
			}
		}()
	}

	// The mid-load failure: the victim primary falls off the fabric.
	failDone := make(chan struct{})
	go func() {
		defer close(failDone)
		<-tripwire
		for i := 0; i < svc.n; i++ {
			if i != victim {
				svc.cluster.FailLink(victim, i)
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	once.Do(func() { close(tripwire) }) // release the failure goroutine
	<-failDone
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var promotions uint64
	for i, s := range svc.stores {
		if i != victim {
			promotions += s.Stats().Promotions
		}
	}
	return &KVSFailoverStat{
		Workload:   "B",
		Dist:       "zipfian",
		FailedNode: victim,
		Ops:        perClient * len(workers),
		Completed:  int(completed.Load()),
		Retried:    int(retried.Load()),
		Promotions: promotions,
		OpsPerSec:  float64(completed.Load()) / elapsed,
	}, nil
}

// runHeal drives a read-mostly zipfian mix across the full failure
// lifecycle: every link of a busy primary is cut when a third of the load
// has completed and restored at two thirds. Operations retry until they
// succeed; after the load drains, the run waits for the cluster to
// converge (every store's down view clear), then audits the repair: the
// rejoined replica must serve a direct one-sided GET with current data,
// and every replica of every key must be byte-identical.
func (svc *kvsService) runHeal(totalOps, getBurst, valueSize int) (*KVSHealStat, error) {
	victim := svc.busiestPrimary()
	workers := make([]int, 0, svc.n-1)
	for i := 0; i < svc.n; i++ {
		if i != victim {
			workers = append(workers, i)
		}
	}
	perClient := totalOps / len(workers)
	var completed, retried atomic.Int64
	third := int64(perClient*len(workers)) / 3
	failWire := make(chan struct{})
	healWire := make(chan struct{})
	var failOnce, healOnce sync.Once

	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	start := time.Now()
	for wi, ci := range workers {
		wi, ci := wi, ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := svc.clients[ci]
			picker := newPicker("zipfian", len(svc.keys), svc.seed^(uint64(ci)*17+3))
			opRNG := stats.NewRNG(svc.seed + uint64(ci) ^ 0x4ea1)
			gen := 0
			for i := 0; i < perClient; i++ {
				key := svc.keys[picker.next()]
				isRead := opRNG.Intn(100) < 95
				var lastErr error
				ok := false
				for attempt := 0; attempt < 200; attempt++ {
					if isRead {
						_, err := client.Get(key)
						if err == nil || errors.Is(err, kvs.ErrNotFound) {
							ok = true
						} else {
							lastErr = err
						}
					} else {
						gen++
						if err := client.Put(key, benchValue(valueSize, gen)); err == nil {
							ok = true
						} else {
							lastErr = err
						}
					}
					if ok {
						break
					}
					retried.Add(1)
				}
				if !ok {
					errs[wi] = fmt.Errorf("op on %q never completed across the outage: %w", key, lastErr)
					return
				}
				switch completed.Add(1) {
				case third:
					failOnce.Do(func() { close(failWire) })
				case 2 * third:
					healOnce.Do(func() { close(healWire) })
				}
			}
		}()
	}

	// The fault injector: cut at 1/3, heal at 2/3, then time convergence
	// (restore → every store publishing a clear down view).
	var restoredAt, convergedAt time.Time
	var convergeErr error
	faultDone := make(chan struct{})
	go func() {
		defer close(faultDone)
		<-failWire
		for i := 0; i < svc.n; i++ {
			if i != victim {
				svc.cluster.FailLink(victim, i)
			}
		}
		<-healWire
		restoredAt = time.Now()
		for i := 0; i < svc.n; i++ {
			if i != victim {
				svc.cluster.RestoreLink(victim, i)
			}
		}
		if err := svc.waitCleanConfig(30 * time.Second); err != nil {
			convergeErr = fmt.Errorf("after RestoreLink: %w", err)
			return
		}
		convergedAt = time.Now()
	}()
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	failOnce.Do(func() { close(failWire) }) // release the injector
	healOnce.Do(func() { close(healWire) })
	<-faultDone
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if convergeErr != nil {
		return nil, convergeErr
	}

	// Audit: replicas byte-identical, and the victim serving one-sided
	// GETs with current data. The audit client runs on node 0 and reads
	// every replica directly.
	audit := svc.clients[0]
	ring := svc.stores[0].Ring()
	victimServes := false
	for _, key := range svc.keys {
		owners := ring.Owners(ring.ShardOf(key))
		var ref []byte
		var refSet bool
		for _, o := range owners {
			val, err := audit.GetReplica(o, key)
			if err != nil && !errors.Is(err, kvs.ErrNotFound) {
				return nil, fmt.Errorf("post-heal GetReplica(%d, %q): %w", o, key, err)
			}
			if !refSet {
				ref, refSet = val, true
			} else if string(ref) != string(val) {
				return nil, fmt.Errorf("replica divergence on %q: node %d disagrees with its peers", key, o)
			}
			if o == victim && err == nil {
				victimServes = true
			}
		}
	}
	if !victimServes {
		return nil, fmt.Errorf("rejoined node %d never served a one-sided GET", victim)
	}

	var repairedSlots, repairBytes, rejoins uint64
	for _, s := range svc.stores {
		st := s.Stats()
		repairedSlots += st.RepairedSlots
		repairBytes += st.RepairBytes
		rejoins += st.Rejoins
	}
	return &KVSHealStat{
		Workload:          "B",
		Dist:              "zipfian",
		FailedNode:        victim,
		Ops:               perClient * len(workers),
		Completed:         int(completed.Load()),
		Retried:           int(retried.Load()),
		RepairMs:          convergedAt.Sub(restoredAt).Seconds() * 1e3,
		RepairedSlots:     repairedSlots,
		RepairBytes:       repairBytes,
		Rejoins:           rejoins,
		VictimServes:      true,
		ReplicasIdentical: true,
		OpsPerSec:         float64(completed.Load()) / elapsed,
	}, nil
}

// runAsymmetric drives the asymmetric-partition lifecycle on a cluster
// configured with a short lease: one-way-cut a busy leader's outbound
// links, let its colocated client keep absorbing writes until the lease
// fences it, wait for the demoting epoch, land the winning epoch's writes
// on the promoted replica, heal, and audit that repair's (epoch, version)
// order made the cluster converge to the winning image.
func (svc *kvsService) runAsymmetric(lease time.Duration) (*KVSAsymStat, error) {
	victim := svc.busiestPrimary()
	ring := svc.stores[0].Ring()
	coord := 0

	// Contested keys: led by the victim, written by both sides.
	var contested [][]byte
	for _, k := range svc.keys {
		if ring.Owners(ring.ShardOf(k))[0] == victim {
			contested = append(contested, k)
			if len(contested) == 24 {
				break
			}
		}
	}
	if len(contested) == 0 {
		return nil, fmt.Errorf("asym: victim %d leads no preloaded key", victim)
	}
	witness := (victim + 1) % svc.n
	st := &KVSAsymStat{
		FailedNode:  victim,
		Coordinator: coord,
		Contested:   len(contested),
		EpochStart:  svc.stores[witness].Epoch(),
	}

	// Baseline on the healthy epoch.
	for _, k := range contested {
		if err := svc.clients[witness].Put(k, benchValue(64, 0)); err != nil {
			return nil, fmt.Errorf("asym baseline put: %w", err)
		}
	}

	// One-way partition: the victim can be written to but cannot send —
	// renewals and replication die, absorption continues.
	for i := 0; i < svc.n; i++ {
		if i != victim {
			svc.cluster.FailLinkDirected(victim, i)
		}
	}

	var absorbed, fencedErrs atomic.Int64
	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		c := svc.clients[victim]
		seq := 0
		for start := time.Now(); time.Since(start) < 8*lease; {
			seq++
			err := c.Put(contested[seq%len(contested)], []byte(fmt.Sprintf("stale-%08d", seq)))
			switch {
			case err == nil:
				absorbed.Add(1)
			case errors.Is(err, kvs.ErrFenced):
				fencedErrs.Add(1)
			}
		}
	}()

	// Winning side: write every contested key through the epoch
	// transition (parks while the demoting epoch is pending).
	lastWin := make(map[string][]byte, len(contested))
	deadline := time.Now().Add(40 * lease)
	for _, k := range contested {
		for gen := 1; ; gen++ {
			val := []byte(fmt.Sprintf("win-%s-%d", k, gen))
			if err := svc.clients[witness].Put(k, val); err == nil {
				lastWin[string(k)] = val
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("asym: winning write on %q never landed after the epoch bump", k)
			}
		}
	}
	if !svc.stores[witness].EpochDown(victim) {
		return nil, fmt.Errorf("asym: winning writes landed but the stale leader was never evicted")
	}
	<-staleDone
	st.Absorbed = int(absorbed.Load())
	st.FencedErrors = int(fencedErrs.Load())
	if st.Absorbed == 0 {
		return nil, fmt.Errorf("asym: stale leader absorbed nothing; no divergence to arbitrate")
	}
	if st.FencedErrors == 0 && svc.stores[victim].Stats().Fenced == 0 {
		return nil, fmt.Errorf("asym: stale leader never fenced itself")
	}

	// Heal and wait for a clean epoch everywhere.
	healedAt := time.Now()
	for i := 0; i < svc.n; i++ {
		if i != victim {
			svc.cluster.RestoreLink(victim, i)
		}
	}
	if err := svc.waitCleanConfig(30 * time.Second); err != nil {
		return nil, fmt.Errorf("asym: %w", err)
	}
	st.ConvergeMs = time.Since(healedAt).Seconds() * 1e3
	st.EpochEnd = svc.stores[witness].Epoch()

	// Audit: every contested key holds the winning epoch's last
	// acknowledged value on every replica — the stale leader's absorbed
	// writes (version counts ahead!) were rolled back.
	st.WinnerPreserved, st.ReplicasIdentical = true, true
	audit := svc.clients[witness]
	for _, k := range contested {
		want := lastWin[string(k)]
		for _, o := range ring.Owners(ring.ShardOf(k)) {
			got, err := audit.GetReplica(o, k)
			if err != nil {
				return nil, fmt.Errorf("asym audit GetReplica(%d, %q): %w", o, k, err)
			}
			if string(got) != string(want) {
				return nil, fmt.Errorf("asym: replica %d of %q = %q, want winning %q (stale write survived)",
					o, k, got, want)
			}
		}
	}
	return st, nil
}

// runCoordFail drives one coordinator-kill lifecycle on a fresh cluster:
// cut every link of the seed coordinator under live load against the
// shards it leads, measure cut → first write acknowledged under the
// successor's term, and audit the succession. In partition mode the links
// heal afterwards and the run additionally audits ex-coordinator demotion
// and convergence to one clean (term, epoch); in node-fail mode the
// coordinator stays dead (a dead node and a permanent full partition are
// indistinguishable on this fabric) and only the survivors are audited.
func (svc *kvsService) runCoordFail(mode string, lease time.Duration) (*KVSCoordStat, error) {
	const coord = 0
	ring := svc.stores[0].Ring()
	witness := 1
	st := &KVSCoordStat{
		Mode:            mode,
		SeedCoordinator: coord,
		TermStart:       svc.stores[witness].Term(),
		EpochStart:      svc.stores[witness].Epoch(),
	}

	// Contested keys: led by the seed coordinator, so their writes have
	// no legal leader until the successor's first epoch evicts it.
	var keys [][]byte
	for _, k := range svc.keys {
		if ring.Owners(ring.ShardOf(k))[0] == coord {
			keys = append(keys, k)
			if len(keys) == 16 {
				break
			}
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("coord-fail: coordinator %d leads no preloaded key", coord)
	}

	for i := 1; i < svc.n; i++ {
		svc.cluster.FailLink(coord, i)
	}
	cutAt := time.Now()

	// Sample the survivors' slot staleness on its own ticker: the hammer
	// loop below blocks inside parked PUTs across the very window where
	// staleness peaks, so inline sampling would only ever see the
	// post-failover residue.
	staleMax := make(chan float64, 1)
	stopSample := make(chan struct{})
	go func() {
		max := 0.0
		tick := time.NewTicker(lease / 4)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				staleMax <- max
				return
			case <-tick.C:
				if m := svc.maxStaleMs(coord); m > max {
					max = m
				}
			}
		}
	}()
	var sampleOnce sync.Once
	stopSampling := func() {
		sampleOnce.Do(func() {
			close(stopSample)
			st.StaleMsMax = <-staleMax
		})
	}
	defer stopSampling()

	// Hammer the contested keys from a survivor until every one has been
	// re-acknowledged under the successor. Definite errors (fenced or
	// unroutable) are the expected shape of the blackout; a hang is a
	// failure.
	client := svc.clients[witness]
	deadline := cutAt.Add(60*lease + 30*time.Second)
	landed := make(map[string]bool, len(keys))
	putErr := make(chan error, 1)
	gen := 0
	for len(landed) < len(keys) {
		for _, k := range keys {
			if landed[string(k)] {
				continue
			}
			gen++
			// Watchdog the PUT instead of timing it after return: the
			// invariant under test is "complete or fail — never hang",
			// and a genuinely wedged Put would otherwise wedge the run.
			k, g := k, gen
			go func() { putErr <- client.Put(k, benchValue(64, g)) }()
			var err error
			select {
			case err = <-putErr:
			case <-time.After(10*lease + 10*time.Second):
				return nil, fmt.Errorf("coord-fail(%s): put on %q wedged past %s — hang, not a definite error",
					mode, k, 10*lease+10*time.Second)
			}
			if err == nil {
				if st.FailoverMs == 0 {
					st.FailoverMs = time.Since(cutAt).Seconds() * 1e3
				}
				landed[string(k)] = true
				st.CompletedAfter++
				continue
			}
			st.StalledWrites++
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("coord-fail(%s): write on %q never completed after the authority died: %w", mode, k, err)
			}
		}
	}
	stopSampling()

	st.Successor = svc.stores[witness].Coordinator()
	if st.Successor == coord {
		return nil, fmt.Errorf("coord-fail(%s): writes completed but the term never moved off the dead coordinator", mode)
	}
	if !svc.stores[witness].EpochDown(coord) {
		return nil, fmt.Errorf("coord-fail(%s): successor's epoch did not evict the dead coordinator", mode)
	}

	if mode == "partition" {
		healedAt := time.Now()
		for i := 1; i < svc.n; i++ {
			svc.cluster.RestoreLink(coord, i)
		}
		if err := svc.waitCleanConfig(30 * time.Second); err != nil {
			return nil, fmt.Errorf("coord-fail(%s): %w", mode, err)
		}
		st.ConvergeMs = time.Since(healedAt).Seconds() * 1e3
		st.ExCoordDemoted = svc.stores[coord].Coordinator() == st.Successor &&
			svc.stores[coord].Stats().CoordDemotions > 0
		if !st.ExCoordDemoted {
			return nil, fmt.Errorf("coord-fail(%s): healed ex-coordinator never demoted itself", mode)
		}
	}

	// Audit: every contested key byte-identical across the replicas still
	// in the configuration (all of them after a heal; the survivors in
	// node-fail mode).
	st.ReplicasIdentical = true
	for _, k := range keys {
		var ref []byte
		var refSet bool
		for _, o := range ring.Owners(ring.ShardOf(k)) {
			if mode == "node-fail" && o == coord {
				continue
			}
			got, err := client.GetReplica(o, k)
			if err != nil {
				return nil, fmt.Errorf("coord-fail(%s) audit GetReplica(%d, %q): %w", mode, o, k, err)
			}
			if !refSet {
				ref, refSet = got, true
			} else if string(got) != string(ref) {
				return nil, fmt.Errorf("coord-fail(%s): replica divergence on %q", mode, k)
			}
		}
	}

	st.TermEnd = svc.stores[witness].Term()
	st.EpochEnd = svc.stores[witness].Epoch()
	for _, s := range svc.stores {
		stats := s.Stats()
		st.Takeovers += stats.Takeovers
		st.CoordDemotions += stats.CoordDemotions
		st.FencedWrites += stats.Fenced
	}
	return st, nil
}

// maxStaleMs reports the largest config-slot staleness any node other
// than skip currently reports.
func (svc *kvsService) maxStaleMs(skip int) float64 {
	max := 0.0
	for i, s := range svc.stores {
		if i == skip {
			continue
		}
		if ms := s.Stats().CfgStaleMs; ms > max {
			max = ms
		}
	}
	return max
}

// waitCleanConfig waits for every store to agree on one (term, epoch)
// with nothing evicted and clear local down views.
func (svc *kvsService) waitCleanConfig(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		clean := true
		term, epoch := svc.stores[0].Term(), svc.stores[0].Epoch()
		for _, s := range svc.stores {
			if s.Term() != term || s.Epoch() != epoch {
				clean = false
			}
			for p := 0; p < svc.n; p++ {
				if s.EpochDown(p) {
					clean = false
				}
			}
			for p, d := range s.DownView() {
				if d && p != s.NodeID() {
					clean = false
				}
			}
		}
		if clean {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster did not converge to one clean (term, epoch) within %s", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// KVS measures the sharded KV service: the YCSB A/B/C mixes over zipfian
// and uniform key distributions, a larger-value row, the failover run, the
// kill → heal → converge run, and the asymmetric-partition (stale leader
// fenced by an epoch bump) run.
func KVS(o Options) (KVSData, error) {
	const (
		nodes    = 4
		shards   = 32
		replicas = 2
		buckets  = 512 // ≤25% load at the full-mode key count: probe chains stay short
		slotSize = 256
		getBurst = 8
	)
	keyCount := o.ops(4000, 800)
	rowOps := o.ops(20000, 2000)
	cfg := kvs.Config{Shards: shards, Replicas: replicas, Buckets: buckets, SlotSize: slotSize}

	svc, err := startKVS(nodes, keyCount, cfg, o.seed())
	if err != nil {
		return KVSData{}, err
	}
	defer svc.close()
	if err := svc.preload(64); err != nil {
		return KVSData{}, err
	}

	d := KVSData{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        o.seed(),
		Nodes:       nodes,
		Shards:      shards,
		Replicas:    replicas,
		Keys:        keyCount,
	}
	type row struct {
		w         kvsWorkload
		dist      string
		valueSize int
	}
	rows := []row{
		{kvsWorkloads[0], "zipfian", 64},
		{kvsWorkloads[1], "zipfian", 64},
		{kvsWorkloads[2], "zipfian", 64},
	}
	if !o.Quick {
		rows = append(rows,
			row{kvsWorkloads[0], "uniform", 64},
			row{kvsWorkloads[1], "uniform", 64},
			row{kvsWorkloads[2], "uniform", 64},
			row{kvsWorkloads[1], "zipfian", 200},
		)
	}
	for _, r := range rows {
		s, err := svc.runMix(r.w, r.dist, r.valueSize, rowOps, getBurst)
		if err != nil {
			return d, fmt.Errorf("workload %s/%s: %w", r.w.name, r.dist, err)
		}
		d.Results = append(d.Results, s)
	}

	// The failover run needs its own cluster: the mix rows above must not
	// see a degraded fabric. A short lease keeps the epoch transition
	// (eviction grace = 2×lease) inside the run's budget.
	faultCfg := cfg
	faultCfg.Lease = 40 * time.Millisecond
	fsvc, err := startKVS(nodes, keyCount, faultCfg, o.seed())
	if err != nil {
		return d, err
	}
	defer fsvc.close()
	if err := fsvc.preload(64); err != nil {
		return d, err
	}
	if d.Failover, err = fsvc.runFailover(o.ops(8000, 1200), getBurst, 64); err != nil {
		return d, fmt.Errorf("failover run (seed %d): %w", o.seed(), err)
	}

	// The heal run gets a fresh cluster too: it exercises the full
	// fail → evict → restore → repair → rejoin lifecycle and audits
	// convergence, so it must start from an intact fabric.
	hsvc, err := startKVS(nodes, keyCount, faultCfg, o.seed())
	if err != nil {
		return d, err
	}
	defer hsvc.close()
	if err := hsvc.preload(64); err != nil {
		return d, err
	}
	if d.Heal, err = hsvc.runHeal(o.ops(8000, 1200), getBurst, 64); err != nil {
		return d, fmt.Errorf("heal run (seed %d): %w", o.seed(), err)
	}

	// The asymmetric-partition run: a stale leader keeps absorbing its
	// colocated clients' writes until the lease fences it, the epoch bump
	// demotes it, and convergence is audited against the winning epoch.
	asvc, err := startKVS(nodes, keyCount, faultCfg, o.seed())
	if err != nil {
		return d, err
	}
	defer asvc.close()
	if err := asvc.preload(64); err != nil {
		return d, err
	}
	if d.Asym, err = asvc.runAsymmetric(faultCfg.Lease); err != nil {
		return d, fmt.Errorf("asymmetric-partition run (seed %d): %w", o.seed(), err)
	}

	// Coordinator-kill runs: the epoch authority itself is taken out —
	// once as a healed full partition (ex-coordinator demotion audited),
	// once as a permanent node failure (survivors audited). Each needs a
	// fresh cluster so the succession starts from the seed term.
	for _, mode := range []string{"partition", "node-fail"} {
		csvc, err := startKVS(nodes, keyCount, faultCfg, o.seed())
		if err != nil {
			return d, err
		}
		if err := csvc.preload(64); err != nil {
			csvc.close()
			return d, err
		}
		cs, err := csvc.runCoordFail(mode, faultCfg.Lease)
		csvc.close()
		if err != nil {
			return d, fmt.Errorf("coordinator-kill run (seed %d): %w", o.seed(), err)
		}
		d.CoordFail = append(d.CoordFail, *cs)
	}
	return d, nil
}

// WriteJSON writes the measurement set to path as indented JSON.
func (d KVSData) WriteJSON(path string) error {
	blob, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Tables renders the measurements as paper-style text tables.
func (d KVSData) Tables() []*stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Sharded KV service (%d nodes, %d shards, %d replicas, %d keys, seed %d)",
			d.Nodes, d.Shards, d.Replicas, d.Keys, d.Seed),
		"mix", "dist", "read%", "val B", "ops/sec", "p50 us", "p99 us", "srv msgs", "get handlers")
	for _, r := range d.Results {
		t.AddRow(r.Workload, r.Dist,
			fmt.Sprintf("%d", r.ReadPct),
			fmt.Sprintf("%d", r.ValueSize),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.2f", r.P50Us),
			fmt.Sprintf("%.2f", r.P99Us),
			fmt.Sprintf("%d", r.ServerMsgsHandled),
			fmt.Sprintf("%d", r.GetHandlerInvocations))
	}
	out := []*stats.Table{t}
	if f := d.Failover; f != nil {
		ft := stats.NewTable("KV failover (all links of a primary cut mid-load)",
			"mix", "dist", "failed node", "ops", "completed", "retries", "promotions", "ops/sec")
		ft.AddRow(f.Workload, f.Dist,
			fmt.Sprintf("%d", f.FailedNode),
			fmt.Sprintf("%d", f.Ops),
			fmt.Sprintf("%d", f.Completed),
			fmt.Sprintf("%d", f.Retried),
			fmt.Sprintf("%d", f.Promotions),
			fmt.Sprintf("%.0f", f.OpsPerSec))
		out = append(out, ft)
	}
	if h := d.Heal; h != nil {
		ht := stats.NewTable("KV heal (links cut at 1/3 of load, restored at 2/3; anti-entropy rejoin)",
			"mix", "dist", "failed node", "ops", "completed", "retries",
			"repair ms", "slots repaired", "repair bytes", "rejoins", "victim serves", "replicas identical", "ops/sec")
		ht.AddRow(h.Workload, h.Dist,
			fmt.Sprintf("%d", h.FailedNode),
			fmt.Sprintf("%d", h.Ops),
			fmt.Sprintf("%d", h.Completed),
			fmt.Sprintf("%d", h.Retried),
			fmt.Sprintf("%.1f", h.RepairMs),
			fmt.Sprintf("%d", h.RepairedSlots),
			fmt.Sprintf("%d", h.RepairBytes),
			fmt.Sprintf("%d", h.Rejoins),
			fmt.Sprintf("%v", h.VictimServes),
			fmt.Sprintf("%v", h.ReplicasIdentical),
			fmt.Sprintf("%.0f", h.OpsPerSec))
		out = append(out, ht)
	}
	if a := d.Asym; a != nil {
		at := stats.NewTable("KV asymmetric partition (stale leader one-way cut; lease fencing + epoch arbitration)",
			"stale leader", "coordinator", "contested keys", "absorbed", "fenced errs",
			"epoch start", "epoch end", "winner preserved", "replicas identical", "converge ms")
		at.AddRow(
			fmt.Sprintf("%d", a.FailedNode),
			fmt.Sprintf("%d", a.Coordinator),
			fmt.Sprintf("%d", a.Contested),
			fmt.Sprintf("%d", a.Absorbed),
			fmt.Sprintf("%d", a.FencedErrors),
			fmt.Sprintf("%d", a.EpochStart),
			fmt.Sprintf("%d", a.EpochEnd),
			fmt.Sprintf("%v", a.WinnerPreserved),
			fmt.Sprintf("%v", a.ReplicasIdentical),
			fmt.Sprintf("%.1f", a.ConvergeMs))
		out = append(out, at)
	}
	if len(d.CoordFail) > 0 {
		ct := stats.NewTable("KV coordinator kill (epoch authority lost; deterministic succession takes over)",
			"mode", "coord", "successor", "term", "epoch", "failover ms", "stalled", "completed",
			"stale ms max", "demoted", "replicas identical", "converge ms")
		for _, c := range d.CoordFail {
			ct.AddRow(c.Mode,
				fmt.Sprintf("%d", c.SeedCoordinator),
				fmt.Sprintf("%d", c.Successor),
				fmt.Sprintf("%d→%d", c.TermStart, c.TermEnd),
				fmt.Sprintf("%d→%d", c.EpochStart, c.EpochEnd),
				fmt.Sprintf("%.1f", c.FailoverMs),
				fmt.Sprintf("%d", c.StalledWrites),
				fmt.Sprintf("%d", c.CompletedAfter),
				fmt.Sprintf("%.1f", c.StaleMsMax),
				fmt.Sprintf("%v", c.ExCoordDemoted),
				fmt.Sprintf("%v", c.ReplicasIdentical),
				fmt.Sprintf("%.1f", c.ConvergeMs))
		}
		out = append(out, ct)
	}
	return out
}
