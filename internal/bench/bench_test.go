package bench

import (
	"strings"
	"testing"
)

func TestFig1Shape(t *testing.T) {
	d := Fig1(Options{Quick: true})
	if d.SmallMsgLatencyUs() < 40 {
		t.Fatalf("small-message latency %.1fµs, paper: >40µs", d.SmallMsgLatencyUs())
	}
	if d.PeakGbps() >= 2.5 {
		t.Fatalf("peak %.2f Gbps, paper: <2 Gbps", d.PeakGbps())
	}
	out := d.Tables()[0].String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "1MB") {
		t.Fatalf("table malformed:\n%s", out)
	}
}

func TestTable1Renders(t *testing.T) {
	d := Table1(Options{})
	out := d.Tables()[0].String()
	for _, want := range []string{"RMC", "DDR3-1600", "crossbar", "MAQ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2SimAndRDMAColumns(t *testing.T) {
	// Exercise only the model-driven columns here (the emu column is
	// wall-clock and covered by the root benchmarks).
	o := Options{Quick: true}
	d := Table2(o)
	if d.SimReadRTTUs < 0.22 || d.SimReadRTTUs > 0.4 {
		t.Fatalf("sim read RTT %.2fµs, want ≈0.3", d.SimReadRTTUs)
	}
	if d.RDMAReadRTTUs < 1.0 || d.RDMAReadRTTUs > 1.4 {
		t.Fatalf("RDMA read RTT %.2fµs, want ≈1.19", d.RDMAReadRTTUs)
	}
	// The headline claim: soNUMA cuts remote read latency ≈4x vs RDMA.
	if ratio := d.RDMAReadRTTUs / d.SimReadRTTUs; ratio < 3 || ratio > 6 {
		t.Fatalf("soNUMA vs RDMA ratio %.1fx, want ≈4x", ratio)
	}
	if d.SimMaxGbps < 60 || d.RDMAMaxGbps != 50 {
		t.Fatalf("bandwidth columns: sim %.1f rdma %.1f", d.SimMaxGbps, d.RDMAMaxGbps)
	}
	if d.EmuErr != nil {
		t.Fatalf("emu column error: %v", d.EmuErr)
	}
	if d.EmuReadRTTUs <= d.SimReadRTTUs {
		t.Fatal("dev platform should be slower than simulated hardware")
	}
}

func TestAblationPCIeDirection(t *testing.T) {
	d := AblationPCIe(Options{Quick: true})
	if len(d.Value) != 2 || d.Value[1] < d.Value[0]*2 {
		t.Fatalf("PCIe attachment should at least double latency: %v", d.Value)
	}
}

func TestAblationCTCacheDirection(t *testing.T) {
	d := AblationCTCache(Options{Quick: true})
	if d.Value[1] <= d.Value[0] {
		t.Fatalf("CT$ off (%v) should cost more than on (%v)", d.Value[1], d.Value[0])
	}
}

func TestKVSQuick(t *testing.T) {
	d, err := KVS(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var sawReadMostly, sawReadOnly bool
	for _, r := range d.Results {
		if r.GetHandlerInvocations != 0 {
			t.Fatalf("workload %s/%s: %d handler invocations attributed to GETs, want 0",
				r.Workload, r.Dist, r.GetHandlerInvocations)
		}
		if r.Workload == "B" && r.Dist == "zipfian" {
			sawReadMostly = true
		}
		if r.Workload == "C" {
			sawReadOnly = true
			if r.ServerMsgsHandled != 0 {
				t.Fatalf("read-only mix handled %d server messages, want 0", r.ServerMsgsHandled)
			}
		}
		if r.OpsPerSec <= 0 || r.P99Us < r.P50Us {
			t.Fatalf("workload %s/%s: implausible stats %+v", r.Workload, r.Dist, r)
		}
	}
	if !sawReadMostly || !sawReadOnly {
		t.Fatal("expected zipfian read-mostly (B) and read-only (C) rows")
	}
	f := d.Failover
	if f == nil {
		t.Fatal("missing failover run")
	}
	if f.Completed != f.Ops {
		t.Fatalf("failover run completed %d/%d ops", f.Completed, f.Ops)
	}
	if f.Promotions == 0 {
		t.Fatal("failover run recorded no shard promotions")
	}
}

func TestEmuHelpers(t *testing.T) {
	lat, err := EmuReadLatencyUs(64, 100)
	if err != nil || lat <= 0 {
		t.Fatalf("EmuReadLatencyUs: %v %v", lat, err)
	}
	bw, err := EmuReadBandwidthGbps(4096, 500)
	if err != nil || bw <= 0 {
		t.Fatalf("EmuReadBandwidthGbps: %v %v", bw, err)
	}
	al, err := EmuAtomicLatencyUs(100)
	if err != nil || al <= 0 {
		t.Fatalf("EmuAtomicLatencyUs: %v %v", al, err)
	}
	ml, err := EmuSendRecvLatencyUs(64, EmuThreshold, 50)
	if err != nil || ml <= 0 {
		t.Fatalf("EmuSendRecvLatencyUs: %v %v", ml, err)
	}
	mb, err := EmuSendRecvBandwidthGbps(4096, EmuThreshold, 100)
	if err != nil || mb <= 0 {
		t.Fatalf("EmuSendRecvBandwidthGbps: %v %v", mb, err)
	}
}
