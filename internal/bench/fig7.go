package bench

import (
	"sonuma/internal/simhw"
	"sonuma/internal/stats"
)

// Fig7Data reproduces Figure 7: remote read performance. (a) latency vs
// request size on the simulated hardware, single- and double-sided; (b)
// bandwidth on the simulated hardware; (c) latency on the development
// platform.
type Fig7Data struct {
	Sizes       []int
	SingleLatNs []float64
	DoubleLatNs []float64
	SingleGBps  []float64
	DoubleGBps  []float64
	SingleMops  []float64
	EmuLatUs    []float64
	EmuErr      error
}

// Fig7 runs the three sweeps.
func Fig7(o Options) Fig7Data {
	p := simhw.DefaultParams()
	d := Fig7Data{Sizes: o.sizes()}
	latOps := o.ops(200, 60)
	bwBytes := o.ops(8<<20, 2<<20)
	for _, s := range d.Sizes {
		d.SingleLatNs = append(d.SingleLatNs, simhw.ReadLatency(p, s, false, latOps).MeanNs)
		d.DoubleLatNs = append(d.DoubleLatNs, simhw.ReadLatency(p, s, true, latOps).MeanNs)
		d.SingleGBps = append(d.SingleGBps, simhw.ReadBandwidth(p, s, false, bwBytes).GBps)
		d.DoubleGBps = append(d.DoubleGBps, simhw.ReadBandwidth(p, s, true, bwBytes).GBps)
		d.SingleMops = append(d.SingleMops, simhw.ReadBandwidth(p, s, false, bwBytes).MopsPerS)
		lat, err := EmuReadLatencyUs(s, o.ops(2000, 300))
		if err != nil {
			d.EmuErr = err
			lat = 0
		}
		d.EmuLatUs = append(d.EmuLatUs, lat)
	}
	return d
}

// Tables implements Experiment.
func (d Fig7Data) Tables() []*stats.Table {
	a := stats.NewTable("Figure 7a: remote read latency (sim'd HW)",
		"request size", "single-sided (ns)", "double-sided (ns)")
	b := stats.NewTable("Figure 7b: remote read bandwidth (sim'd HW)",
		"request size", "single-sided (GB/s)", "double-sided agg (GB/s)", "single Mops/s")
	c := stats.NewTable("Figure 7c: remote read latency (development platform, wall clock)",
		"request size", "latency (us)")
	for i, s := range d.Sizes {
		sz := stats.FormatBytes(s)
		a.AddRow(sz, d.SingleLatNs[i], d.DoubleLatNs[i])
		b.AddRow(sz, d.SingleGBps[i], d.DoubleGBps[i], d.SingleMops[i])
		c.AddRow(sz, d.EmuLatUs[i])
	}
	return []*stats.Table{a, b, c}
}
