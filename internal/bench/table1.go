package bench

import (
	"fmt"

	"sonuma/internal/simhw"
	"sonuma/internal/stats"
)

// Table1Data documents the simulated system configuration, mirroring the
// paper's Table 1.
type Table1Data struct {
	P simhw.Params
}

// Table1 returns the active cycle-model configuration.
func Table1(Options) Table1Data { return Table1Data{P: simhw.DefaultParams()} }

// Tables implements Experiment.
func (d Table1Data) Tables() []*stats.Table {
	t := stats.NewTable("Table 1: system parameters for the cycle-level model", "component", "configuration")
	t.AddRow("Core", "ARM Cortex-A15-like, 2GHz; software costs: issue "+nsStr(d.P.IssueCost.Nanoseconds())+", async issue/completion "+nsStr(d.P.AsyncIssueCost.Nanoseconds())+"/"+nsStr(d.P.AsyncCompletionCost.Nanoseconds()))
	t.AddRow("L1 caches", fmt.Sprintf("%dKB %d-way, 64B lines, %d MSHRs, %.1f-cycle latency",
		d.P.L1.Size>>10, d.P.L1.Ways, d.P.L1.MSHRs, d.P.L1.Latency.Nanoseconds()*2))
	t.AddRow("L2 cache", fmt.Sprintf("%dMB %d-way, %.0f-cycle latency", d.P.L2.Size>>20, d.P.L2.Ways, d.P.L2.Latency.Nanoseconds()*2))
	t.AddRow("Memory", fmt.Sprintf("DDR3-1600 model: %d banks, 60ns latency, 12.8GBps peak, 8KB pages", d.P.DRAM.Banks))
	t.AddRow("RMC", fmt.Sprintf("3 pipelines (RGP, RCP, RRPP); %d-entry MAQ, %d-entry TLB, %d-entry ITT", d.P.MAQEntries, d.P.TLBEntries, d.P.ITTEntries))
	t.AddRow("Fabric", fmt.Sprintf("full crossbar, %.0fns inter-node delay, %.0fGBps links", d.P.LinkDelay.Nanoseconds(), 1000.0/float64(d.P.LinkPsPerByte)))
	return []*stats.Table{t}
}

func nsStr(v float64) string { return fmt.Sprintf("%.0fns", v) }
