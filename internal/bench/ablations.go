package bench

import (
	"fmt"

	"sonuma/internal/fabric"
	"sonuma/internal/sim"
	"sonuma/internal/simhw"
	"sonuma/internal/stats"
)

// This file holds the ablation studies over the RMC design choices the
// paper calls out (§4.3, §8): the CT$, the TLB, the MAQ depth, the
// unrolling rate, the fabric topology, the messaging threshold, and — the
// central architectural argument — what happens when the RMC is moved back
// behind a PCIe bus.

// AblationData is one knob's sweep: latency or bandwidth per setting.
type AblationData struct {
	Name     string
	Setting  []string
	MetricNm string
	Value    []float64
}

// Tables implements Experiment.
func (d AblationData) Tables() []*stats.Table {
	t := stats.NewTable("Ablation: "+d.Name, "setting", d.MetricNm)
	for i := range d.Setting {
		t.AddRow(d.Setting[i], d.Value[i])
	}
	return []*stats.Table{t}
}

// AblationCTCache compares small-read latency with the context-table cache
// enabled vs disabled (every RRPP request fetching its CT entry from
// memory).
func AblationCTCache(o Options) AblationData {
	ops := o.ops(200, 60)
	d := AblationData{Name: "CT$ (context table cache)", MetricNm: "64B read latency (ns)"}
	for _, on := range []bool{true, false} {
		p := simhw.DefaultParams()
		p.CTCache = on
		label := "CT$ on"
		if !on {
			label = "CT$ off (memory CT lookup per request)"
		}
		d.Setting = append(d.Setting, label)
		d.Value = append(d.Value, simhw.ReadLatency(p, 64, false, ops).MeanNs)
	}
	return d
}

// AblationTLB sweeps the RMC TLB size under a page-stride workload cycling
// a 256-page working set — sizes below the set thrash (LRU + sequential
// cycling defeats them), sizes above it hit. The headline finding mirrors
// the paper's integration argument (§4.3/§5.1): because the RMC walks
// locally cached page tables, even a 0% hit rate costs only a few ns — the
// settings column records the measured hit rate next to the latency.
func AblationTLB(o Options) AblationData {
	ops := o.ops(800, 300)
	d := AblationData{Name: "RMC TLB size under page-stride reads (256-page set)", MetricNm: "64B read latency (ns)"}
	for _, entries := range []int{0, 8, 32, 128, 1024} {
		p := simhw.DefaultParams()
		label := "no TLB"
		if entries > 0 {
			p.TLBEntries = entries
			p.TLBWays = 4
			label = fmt.Sprintf("%d entries", entries)
		} else {
			p.TLBEntries = 1
			p.TLBWays = 1
		}
		r := simhw.ReadLatencyWith(p, 64, simhw.LatencyOpts{
			Stride: p.PageSize, Span: 256 * p.PageSize, Ops: ops,
		})
		d.Setting = append(d.Setting, fmt.Sprintf("%s (hit rate %.2f)", label, r.TLBHitRate))
		d.Value = append(d.Value, r.MeanNs)
	}
	return d
}

// AblationMAQ sweeps the MAQ depth against large-read bandwidth: too few
// in-flight memory accesses cannot cover the DRAM bank latency.
func AblationMAQ(o Options) AblationData {
	bytes := o.ops(8<<20, 2<<20)
	d := AblationData{Name: "MAQ depth vs streaming bandwidth", MetricNm: "8KB read bandwidth (GB/s)"}
	for _, maq := range []int{2, 4, 8, 16, 32, 64} {
		p := simhw.DefaultParams()
		p.MAQEntries = maq
		p.L1.MSHRs = maq
		d.Setting = append(d.Setting, stats.FormatFloat(float64(maq)))
		d.Value = append(d.Value, simhw.ReadBandwidth(p, 8192, false, bytes).GBps)
	}
	return d
}

// AblationUnroll sweeps the RGP's per-line unrolling occupancy against
// large-transfer latency.
func AblationUnroll(o Options) AblationData {
	ops := o.ops(120, 40)
	d := AblationData{Name: "RGP unroll rate vs 8KB read latency", MetricNm: "8KB read latency (ns)"}
	for _, perLine := range []sim.Time{1, 2, 4, 8, 16} {
		p := simhw.DefaultParams()
		p.RGPPerLine = perLine * sim.Nanosecond
		d.Setting = append(d.Setting, stats.FormatFloat(float64(perLine))+" ns/line")
		d.Value = append(d.Value, simhw.ReadLatency(p, 8192, false, ops).MeanNs)
	}
	return d
}

// AblationTopology compares the flat crossbar against 2D/3D tori at larger
// node counts, measuring the worst-case (diameter) pair — the fabric
// question §8 leaves open.
func AblationTopology(o Options) AblationData {
	ops := o.ops(150, 50)
	d := AblationData{Name: "topology at 64 nodes (worst-case pair)", MetricNm: "64B read latency (ns)"}
	type cfg struct {
		label string
		topo  fabric.Topology
		dst   int
	}
	for _, c := range []cfg{
		{"crossbar (flat 50ns)", fabric.NewCrossbar(64), 63},
		{"2D torus 8x8 (11ns/hop)", fabric.NewTorus2D(8, 8), 8*4 + 4}, // (4,4): diameter pair
		{"3D torus 4x4x4 (11ns/hop)", fabric.NewTorus3D(4, 4, 4), 2 + 2*4 + 2*16},
	} {
		p := simhw.DefaultParams()
		r := simhw.ReadLatencyWith(p, 64, simhw.LatencyOpts{Topo: c.topo, Src: 0, Dst: c.dst, Ops: ops})
		d.Setting = append(d.Setting, c.label)
		d.Value = append(d.Value, r.MeanNs)
	}
	return d
}

// AblationThreshold sweeps the messaging push/pull boundary at a fixed
// 1 KB message size, where the two mechanisms diverge clearly: thresholds
// above 1 KB push (slow at this size), thresholds at or below it pull.
func AblationThreshold(o Options) AblationData {
	rounds := o.ops(60, 25)
	d := AblationData{Name: "push/pull threshold at 1KB messages", MetricNm: "half-duplex latency (ns)"}
	p := simhw.DefaultParams()
	for _, th := range []int{-1, 4096, 1024, 256, 0} {
		label := "always push"
		switch {
		case th == 0:
			label = "always pull"
		case th > 0:
			label = "threshold " + stats.FormatBytes(th)
		}
		d.Setting = append(d.Setting, label)
		d.Value = append(d.Value, simhw.SendRecvLatency(p, 1024, th, rounds).MeanNs)
	}
	return d
}

// AblationPCIe re-introduces PCIe crossings on the application/RMC
// interface — turning the RMC into a conventional adapter — and shows the
// latency collapse the paper's coherent integration avoids (§2.2, §7.4).
func AblationPCIe(o Options) AblationData {
	ops := o.ops(200, 60)
	d := AblationData{Name: "RMC integration: coherent vs PCIe-attached", MetricNm: "64B read latency (ns)"}
	coherent := simhw.DefaultParams()
	d.Setting = append(d.Setting, "coherent (soNUMA)")
	d.Value = append(d.Value, simhw.ReadLatency(coherent, 64, false, ops).MeanNs)

	pcie := simhw.DefaultParams()
	// Queue-pair interactions cross PCIe instead of the cache hierarchy:
	// a doorbell + descriptor fetch on issue, a DMA + poll on completion
	// (≈450ns each way, §2.2), and the adapter-side state replication
	// makes translations another DMA round trip on misses.
	pcie.WQNotify += 450 * sim.Nanosecond
	pcie.CQNotify += 450 * sim.Nanosecond
	d.Setting = append(d.Setting, "PCIe-attached (RDMA-style)")
	d.Value = append(d.Value, simhw.ReadLatency(pcie, 64, false, ops).MeanNs)
	return d
}

// Ablations runs the full set.
func Ablations(o Options) []AblationData {
	return []AblationData{
		AblationCTCache(o),
		AblationTLB(o),
		AblationMAQ(o),
		AblationUnroll(o),
		AblationTopology(o),
		AblationThreshold(o),
		AblationPCIe(o),
	}
}
