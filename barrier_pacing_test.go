package sonuma_test

import (
	"runtime"
	"testing"
	"time"

	"sonuma"
)

// TestBarrierSingleProc drives barrier rounds with every participant
// goroutine sharing one scheduler proc. This is the regression for the
// pure-Gosched poll loop Barrier.Wait used to run: polling must escalate
// to WaitYield's sleep tier so the peers whose announcements the poller
// waits on — and everything else on a starved host — keep making
// progress. The flagged shape is exactly the PR 7 starvation class that
// sonuma-lint's spinloop analyzer now rejects tree-wide.
func TestBarrierSingleProc(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	const n = 4
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	parts := []int{0, 1, 2, 3}
	barriers := make([]*sonuma.Barrier, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(9, sonuma.BarrierRegionSize(n)+4096)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := ctx.NewQP(16)
		if err != nil {
			t.Fatal(err)
		}
		if barriers[i], err = sonuma.NewBarrier(ctx, qp, 0, parts); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(b *sonuma.Barrier) {
			var err error
			for r := 0; r < 10 && err == nil; r++ {
				err = b.Wait()
			}
			done <- err
		}(barriers[i])
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("barrier rounds did not complete with all participants on one proc")
		}
	}
}
