# Convenience entry points; CI runs the same commands.

GO ?= go

.PHONY: build test lint lint-json vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The repo's domain-specific analyzers (see ARCHITECTURE.md, "Static
# analysis"). Blocking: any unsuppressed finding fails.
lint:
	$(GO) run ./cmd/sonuma-lint ./...

# Machine-readable findings (stdout), e.g. for editor/CI integration.
lint-json:
	$(GO) run ./cmd/sonuma-lint -json - ./...

# Standard vet plus sonuma-lint via the -vettool protocol.
vet:
	$(GO) vet ./...
	$(GO) build -o $(CURDIR)/bin/sonuma-lint ./cmd/sonuma-lint
	$(GO) vet -vettool=$(CURDIR)/bin/sonuma-lint ./...

fmt:
	gofmt -w .
