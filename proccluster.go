package sonuma

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"sonuma/internal/fabric"
)

// ProcCtlRequest is one control-plane request to a sonuma-node daemon,
// sent as a single JSON line on the daemon's control socket
// (<dir>/ctl-n<id>.sock). The control plane is how a driving process
// reaches state it cannot touch one-sidedly across an OS boundary:
// fault-schedule broadcast and the daemon's service counters.
type ProcCtlRequest struct {
	// Op is one of "ping", "cut", "restore", "info", "shutdown".
	Op string `json:"op"`
	// A, B name the link endpoints for cut/restore.
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`
	// Directed makes a cut one-way (A→B only).
	Directed bool `json:"directed,omitempty"`
}

// ProcCtlResponse answers one ProcCtlRequest.
type ProcCtlResponse struct {
	OK   bool          `json:"ok"`
	Err  string        `json:"err,omitempty"`
	Info *ProcNodeInfo `json:"info,omitempty"`
}

// ProcNodeInfo is a daemon's self-reported service state. Stats carries
// the kvs StoreStats JSON verbatim so this package stays independent of
// the service layer; consumers that know the service decode it.
type ProcNodeInfo struct {
	Node        int             `json:"node"`
	Term        uint64          `json:"term"`
	Epoch       uint64          `json:"epoch"`
	Coordinator int             `json:"coordinator"`
	DownView    []bool          `json:"downView,omitempty"`
	Stats       json.RawMessage `json:"stats,omitempty"`
}

// ProcCtlSocket returns the control-socket path of node id under dir.
func ProcCtlSocket(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("ctl-n%d.sock", id))
}

// ProcOptions configures StartProcCluster.
type ProcOptions struct {
	// Nodes is the total fabric size across all processes.
	Nodes int
	// Daemons lists the node IDs to run as sonuma-node processes.
	Daemons []int
	// Local lists the node IDs hosted by the calling process (typically
	// client-only nodes driving the workload). Must be non-empty and
	// disjoint from Daemons.
	Local []int
	// Dir is the socket/scratch directory (a fresh temp dir when empty,
	// removed on Close).
	Dir string
	// Credits is the per-flow credit window (0 selects the default).
	Credits int
	// BinPath locates the sonuma-node binary. Empty tries $PATH, then
	// `go build` into the scratch dir.
	BinPath string
	// ServiceConfig, when set, is JSON handed to each daemon's -kvs flag
	// (a kvs.Config); daemons then host a Store alongside their RMC.
	ServiceConfig []byte
	// ReadyTimeout bounds startup: fabric connect plus daemon pings
	// (default 20s).
	ReadyTimeout time.Duration
}

// ProcCluster is a cluster spanning real OS processes: this process hosts
// the Local nodes (through a Cluster over a ProcFabric), and one
// sonuma-node daemon per Daemons entry hosts the rest. Fault injection is
// mapped onto the process world: FailLink/RestoreLink broadcast
// administrative cuts to every process so all of them observe the same
// epoch events, KillNode delivers SIGKILL — a crash that genuinely loses
// the node's memory — and RestartNode boots a fresh daemon into the same
// fabric address.
type ProcCluster struct {
	opts    ProcOptions
	dir     string
	ownDir  bool
	bin     string
	fab     *fabric.ProcFabric
	cluster *Cluster

	mu    sync.Mutex
	procs map[int]*procEntry
}

type procEntry struct {
	cmd  *exec.Cmd
	done chan struct{}
}

// StartProcCluster builds the parent's fabric and cluster, spawns the
// daemons, and blocks until every fabric flow is connected and every
// daemon answers a control ping.
func StartProcCluster(opts ProcOptions) (*ProcCluster, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("sonuma: ProcOptions.Nodes must be positive")
	}
	if len(opts.Local) == 0 {
		return nil, fmt.Errorf("sonuma: ProcOptions.Local is empty (the parent must host at least one node)")
	}
	if opts.ReadyTimeout <= 0 {
		opts.ReadyTimeout = 20 * time.Second
	}
	pc := &ProcCluster{opts: opts, dir: opts.Dir, procs: make(map[int]*procEntry)}
	if pc.dir == "" {
		dir, err := os.MkdirTemp("", "sonuma-proc-")
		if err != nil {
			return nil, err
		}
		pc.dir, pc.ownDir = dir, true
	}
	fail := func(err error) (*ProcCluster, error) {
		pc.Close()
		return nil, err
	}
	if len(opts.ServiceConfig) > 0 {
		if err := os.WriteFile(filepath.Join(pc.dir, "kvs.json"), opts.ServiceConfig, 0o644); err != nil {
			return fail(err)
		}
	}
	bin, err := ResolveNodeBinary(opts.BinPath, pc.dir)
	if err != nil {
		return fail(err)
	}
	pc.bin = bin

	// Parent fabric first: its listeners must be up before any daemon
	// starts dialing, or slow-starting daemons would observe churn.
	pf, err := fabric.NewProcFabric(fabric.ProcConfig{
		Nodes:   opts.Nodes,
		Local:   opts.Local,
		Dir:     pc.dir,
		Credits: opts.Credits,
	})
	if err != nil {
		return fail(err)
	}
	pc.fab = pf
	cl, err := NewClusterWithTransport(Config{LinkCredits: opts.Credits}, pf, opts.Local)
	if err != nil {
		pf.Close()
		pc.fab = nil
		return fail(err)
	}
	pc.cluster = cl

	for _, id := range opts.Daemons {
		if err := pc.spawn(id); err != nil {
			return fail(err)
		}
	}
	deadline := time.Now().Add(opts.ReadyTimeout)
	if err := pf.WaitReady(time.Until(deadline)); err != nil {
		return fail(fmt.Errorf("sonuma: proc fabric: %w", err))
	}
	for _, id := range opts.Daemons {
		if err := pc.WaitDaemon(id, time.Until(deadline)); err != nil {
			return fail(err)
		}
	}
	return pc, nil
}

// ResolveNodeBinary locates the sonuma-node binary: explicit wins, then
// $PATH, then a `go build` into dir. Drivers that boot several clusters
// in one run call it once and pass the result as ProcOptions.BinPath so
// the build cost is paid once.
func ResolveNodeBinary(explicit, dir string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if p, err := exec.LookPath("sonuma-node"); err == nil {
		return p, nil
	}
	out := filepath.Join(dir, "sonuma-node")
	cmd := exec.Command("go", "build", "-o", out, "sonuma/cmd/sonuma-node")
	if msg, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("sonuma: building sonuma-node: %v\n%s", err, msg)
	}
	return out, nil
}

// spawn starts the daemon for node id, logging to <dir>/n<id>.log.
func (pc *ProcCluster) spawn(id int) error {
	args := []string{
		"-id", fmt.Sprint(id),
		"-nodes", fmt.Sprint(pc.opts.Nodes),
		"-dir", pc.dir,
	}
	if pc.opts.Credits > 0 {
		args = append(args, "-credits", fmt.Sprint(pc.opts.Credits))
	}
	if len(pc.opts.ServiceConfig) > 0 {
		args = append(args, "-kvs", filepath.Join(pc.dir, "kvs.json"))
	}
	cmd := exec.Command(pc.bin, args...)
	logf, err := os.OpenFile(filepath.Join(pc.dir, fmt.Sprintf("n%d.log", id)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("sonuma: starting sonuma-node n%d: %w", id, err)
	}
	logf.Close()
	e := &procEntry{cmd: cmd, done: make(chan struct{})}
	go func() {
		cmd.Wait()
		close(e.done)
	}()
	pc.mu.Lock()
	pc.procs[id] = e
	pc.mu.Unlock()
	return nil
}

// Cluster returns the parent-side cluster hosting the Local nodes.
func (pc *ProcCluster) Cluster() *Cluster { return pc.cluster }

// Transport returns the parent's process fabric.
func (pc *ProcCluster) Transport() *fabric.ProcFabric { return pc.fab }

// Dir returns the cluster's socket/scratch directory (daemon logs live
// there as n<id>.log).
func (pc *ProcCluster) Dir() string { return pc.dir }

// Ctl sends one control request to daemon id and returns its response.
func (pc *ProcCluster) Ctl(id int, req ProcCtlRequest, timeout time.Duration) (*ProcCtlResponse, error) {
	conn, err := net.DialTimeout("unix", ProcCtlSocket(pc.dir, id), timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var resp ProcCtlResponse
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, errors.New(resp.Err)
	}
	return &resp, nil
}

// WaitDaemon blocks until daemon id answers a control ping.
func (pc *ProcCluster) WaitDaemon(id int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := pc.Ctl(id, ProcCtlRequest{Op: "ping"}, time.Second); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sonuma: daemon n%d not answering control pings after %v", id, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Info fetches daemon id's self-reported service state.
func (pc *ProcCluster) Info(id int) (*ProcNodeInfo, error) {
	resp, err := pc.Ctl(id, ProcCtlRequest{Op: "info"}, 2*time.Second)
	if err != nil {
		return nil, err
	}
	if resp.Info == nil {
		return nil, fmt.Errorf("sonuma: daemon n%d returned no info", id)
	}
	return resp.Info, nil
}

// broadcast applies a fault op locally and relays it to every live
// daemon. Dead daemons are skipped — they will learn nothing, exactly
// like a crashed node.
func (pc *ProcCluster) broadcast(req ProcCtlRequest, local func()) {
	local()
	pc.mu.Lock()
	ids := make([]int, 0, len(pc.procs))
	for id := range pc.procs {
		ids = append(ids, id)
	}
	pc.mu.Unlock()
	for _, id := range ids {
		//lint:ignore errdrop relays to dead daemons fail by design — a crashed node cannot learn the fault schedule; harnesses assert live-daemon health via WaitDaemon/Info
		pc.Ctl(id, req, 2*time.Second)
	}
}

// FailLink cuts the link a↔b in every process of the cluster.
func (pc *ProcCluster) FailLink(a, b int) {
	pc.broadcast(ProcCtlRequest{Op: "cut", A: a, B: b}, func() { pc.cluster.FailLink(a, b) })
}

// FailLinkDirected cuts only the direction a→b in every process.
func (pc *ProcCluster) FailLinkDirected(a, b int) {
	pc.broadcast(ProcCtlRequest{Op: "cut", A: a, B: b, Directed: true},
		func() { pc.cluster.FailLinkDirected(a, b) })
}

// RestoreLink repairs the link a↔b in every process.
func (pc *ProcCluster) RestoreLink(a, b int) {
	pc.broadcast(ProcCtlRequest{Op: "restore", A: a, B: b}, func() { pc.cluster.RestoreLink(a, b) })
}

// KillNode SIGKILLs daemon id's process — no shutdown path runs, its
// memory is genuinely gone, and peers notice through dropped sockets.
// It blocks until the process is reaped.
func (pc *ProcCluster) KillNode(id int) error {
	pc.mu.Lock()
	e := pc.procs[id]
	delete(pc.procs, id)
	pc.mu.Unlock()
	if e == nil {
		return fmt.Errorf("sonuma: no daemon for node %d", id)
	}
	e.cmd.Process.Kill()
	select {
	case <-e.done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("sonuma: daemon n%d did not die", id)
	}
	return nil
}

// RestartNode boots a fresh daemon for node id (empty state, same fabric
// address) and waits until it answers control pings.
func (pc *ProcCluster) RestartNode(id int, timeout time.Duration) error {
	if err := pc.spawn(id); err != nil {
		return err
	}
	return pc.WaitDaemon(id, timeout)
}

// Close tears the whole cluster down: daemons get a shutdown request and
// a SIGKILL backstop, the parent cluster closes, and an owned scratch
// directory is removed.
func (pc *ProcCluster) Close() {
	pc.mu.Lock()
	procs := make(map[int]*procEntry, len(pc.procs))
	for id, e := range pc.procs {
		procs[id] = e
	}
	pc.procs = make(map[int]*procEntry)
	pc.mu.Unlock()
	for id := range procs {
		//lint:ignore errdrop shutdown is best-effort: an already-dead daemon cannot ack, and the done-channel wait plus kill below bound teardown either way
		pc.Ctl(id, ProcCtlRequest{Op: "shutdown"}, time.Second)
	}
	deadline := time.After(3 * time.Second)
	for _, e := range procs {
		select {
		case <-e.done:
			continue
		case <-deadline:
		default:
		}
		e.cmd.Process.Kill()
		select {
		case <-e.done:
		case <-time.After(3 * time.Second):
		}
	}
	if pc.cluster != nil {
		pc.cluster.Close()
	} else if pc.fab != nil {
		pc.fab.Close()
	}
	if pc.ownDir {
		os.RemoveAll(pc.dir)
	}
}
